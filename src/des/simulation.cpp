#include "des/simulation.h"

namespace mrcp::des {

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

std::uint64_t EventHandle::seq() const {
  MRCP_CHECK(state_ != nullptr);
  return state_->seq;
}

Time EventHandle::time() const {
  MRCP_CHECK(state_ != nullptr);
  return state_->time;
}

EventHandle Simulation::schedule_at(Time at, std::function<void()> fn) {
  MRCP_CHECK_MSG(at >= now_, "cannot schedule event in the past");
  MRCP_CHECK(fn != nullptr);
  auto state = std::make_shared<EventHandle::State>();
  state->time = at;
  state->seq = next_seq_;
  queue_.push(Event{at, next_seq_++, std::move(fn), state});
  ++pending_count_;
  ++stats_.scheduled;
  return EventHandle{std::move(state)};
}

EventHandle Simulation::schedule_after(Time delay, std::function<void()> fn) {
  MRCP_CHECK(delay >= Time{0});
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulation::cancel(EventHandle& handle) {
  if (!handle.pending()) return false;
  handle.state_->cancelled = true;
  --pending_count_;
  ++stats_.cancelled;
  return true;
}

bool Simulation::step(Time until) {
  while (!queue_.empty()) {
    if (queue_.top().time > until) return false;
    // Move the event out of the heap. top() is const; the copy of the
    // std::function is unavoidable with std::priority_queue, but events
    // carry small closures so this is cheap.
    Event ev = queue_.top();
    queue_.pop();
    if (ev.state->cancelled) {
      ++stats_.skipped_cancelled;
      continue;
    }
    MRCP_DCHECK(ev.time >= now_);
    now_ = ev.time;
    ev.state->fired = true;
    --pending_count_;
    ++stats_.fired;
    ev.fn();
    return true;
  }
  return false;
}

void Simulation::restore_clock(Time at) {
  MRCP_CHECK_MSG(empty(), "restore_clock requires an empty event list");
  MRCP_CHECK(at >= now_);
  now_ = at;
}

void Simulation::run(Time until) {
  // A stop requested before run() halts it before the first event; the
  // flag is consumed on exit so the next run() starts fresh either way.
  while (!stop_requested_ && step(until)) {
  }
  stop_requested_ = false;
}

}  // namespace mrcp::des
