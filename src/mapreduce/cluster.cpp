#include "mapreduce/cluster.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace mrcp {

Cluster Cluster::homogeneous(int m, int map_capacity, int reduce_capacity,
                             int net_capacity) {
  MRCP_CHECK(m >= 1);
  Cluster c;
  for (int i = 0; i < m; ++i) {
    c.add_resource(map_capacity, reduce_capacity, net_capacity);
  }
  return c;
}

void Cluster::add_resource(int map_capacity, int reduce_capacity,
                           int net_capacity) {
  add_resource_hetero(map_capacity, reduce_capacity, net_capacity,
                      kBaseSpeedPermille, 0);
}

void Cluster::add_resource_hetero(int map_capacity, int reduce_capacity,
                                  int net_capacity, int speed_permille,
                                  int rack) {
  MRCP_CHECK(map_capacity >= 0 && reduce_capacity >= 0 && net_capacity >= 0);
  MRCP_CHECK_MSG(map_capacity + reduce_capacity > 0, "resource with no slots");
  MRCP_CHECK_MSG(speed_permille > 0, "resource speed must be positive");
  MRCP_CHECK_MSG(rack >= 0, "resource rack must be non-negative");
  Resource r;
  r.id = static_cast<ResourceId>(resources_.size());
  r.map_capacity = map_capacity;
  r.reduce_capacity = reduce_capacity;
  r.net_capacity = net_capacity;
  r.speed_permille = speed_permille;
  r.rack = rack;
  resources_.push_back(r);
  total_map_slots_ += map_capacity;
  total_reduce_slots_ += reduce_capacity;
}

void Cluster::set_resource_capacity(ResourceId id, int map_capacity,
                                    int reduce_capacity) {
  MRCP_CHECK(id >= 0 && id < size());
  MRCP_CHECK(map_capacity >= 0 && reduce_capacity >= 0);
  Resource& r = resources_[static_cast<std::size_t>(id)];
  total_map_slots_ += map_capacity - r.map_capacity;
  total_reduce_slots_ += reduce_capacity - r.reduce_capacity;
  r.map_capacity = map_capacity;
  r.reduce_capacity = reduce_capacity;
}

const Resource& Cluster::resource(ResourceId id) const {
  MRCP_CHECK(id >= 0 && id < size());
  return resources_[static_cast<std::size_t>(id)];
}

Resource Cluster::combined_resource() const {
  Resource r;
  r.id = 0;
  r.map_capacity = total_map_slots_;
  r.reduce_capacity = total_reduce_slots_;
  const int speed = uniform_speed_permille();
  if (speed > 0) r.speed_permille = speed;
  return r;
}

int Cluster::uniform_speed_permille() const {
  if (resources_.empty()) return kBaseSpeedPermille;
  const int speed = resources_.front().speed_permille;
  for (const Resource& r : resources_) {
    if (r.speed_permille != speed) return -1;
  }
  return speed;
}

std::vector<int> Cluster::rack_ids() const {
  std::vector<int> racks;
  racks.reserve(resources_.size());
  for (const Resource& r : resources_) racks.push_back(r.rack);
  std::sort(racks.begin(), racks.end());
  racks.erase(std::unique(racks.begin(), racks.end()), racks.end());
  return racks;
}

bool Cluster::has_rack(int rack) const {
  for (const Resource& r : resources_) {
    if (r.rack == rack) return true;
  }
  return false;
}

std::string Cluster::to_string() const {
  std::ostringstream os;
  os << "Cluster{m=" << size() << ", map_slots=" << total_map_slots_
     << ", reduce_slots=" << total_reduce_slots_ << "}";
  return os.str();
}

}  // namespace mrcp
