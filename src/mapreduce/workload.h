// A workload is an arrival-ordered sequence of jobs plus the cluster it
// targets. Generators for the paper's two workloads live in
// synthetic_workload.h (Table 3) and facebook_workload.h (Table 4).
#pragma once

#include <string>
#include <vector>

#include "mapreduce/cluster.h"
#include "mapreduce/job.h"

namespace mrcp {

struct Workload {
  std::vector<Job> jobs;  ///< sorted by arrival_time, ids dense 0..n-1
  Cluster cluster;

  std::size_t size() const { return jobs.size(); }

  /// Aggregate descriptive statistics, for sanity benches/tests.
  struct Summary {
    double mean_map_tasks = 0.0;
    double mean_reduce_tasks = 0.0;
    double mean_map_exec_seconds = 0.0;
    double mean_reduce_exec_seconds = 0.0;
    double mean_interarrival_seconds = 0.0;
    double mean_laxity_seconds = 0.0;
    double fraction_future_start = 0.0;  ///< fraction with s_j > v_j
    /// Offered load: total task work per second of arrival span, divided
    /// by total slot count — a utilisation estimate, should be < 1 for a
    /// stable open system.
    double offered_utilization = 0.0;
  };
  Summary summarize() const;

  std::string to_string() const;
};

/// Validate a workload: every job valid, arrival order non-decreasing,
/// ids dense and in order. Empty string when OK.
std::string validate_workload(const Workload& w);

}  // namespace mrcp
