// Workload (de)serialization.
//
// A plain line-oriented trace format so workloads can be generated once,
// archived, inspected, and replayed across runs/tools:
//
//   mrcp-workload v1
//   cluster <num_resources>
//   resource <map_capacity> <reduce_capacity>        (x num_resources)
//   jobs <num_jobs>
//   job <id> <arrival> <earliest_start> <deadline> <k_map> <k_reduce>
//   task <exec_time> <res_req>                       (k_map map tasks,
//                                                     then k_reduce reduces)
//   [precedence <before_flat_index> <after_flat_index>]*
//
// All times are integer ticks. Lines starting with '#' are comments.
#pragma once

#include <iosfwd>
#include <string>

#include "mapreduce/workload.h"

namespace mrcp {

/// Serialize to the trace format.
void save_workload(const Workload& workload, std::ostream& out);
std::string workload_to_string(const Workload& workload);
/// Returns false on I/O error.
bool save_workload_file(const Workload& workload, const std::string& path);

/// Parse the trace format. On malformed input, `error` (if non-null)
/// receives a description and the returned workload is empty.
Workload load_workload(std::istream& in, std::string* error = nullptr);
Workload workload_from_string(const std::string& text,
                              std::string* error = nullptr);
Workload load_workload_file(const std::string& path,
                            std::string* error = nullptr);

}  // namespace mrcp
