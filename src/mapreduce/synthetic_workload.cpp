#include "mapreduce/synthetic_workload.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace mrcp {

Workload generate_synthetic_workload(const SyntheticWorkloadConfig& config) {
  MRCP_CHECK(config.num_jobs > 0);
  MRCP_CHECK(config.e_max >= 1);
  MRCP_CHECK(config.arrival_rate > 0.0);
  MRCP_CHECK(config.deadline_multiplier_ul >= 1.0);
  MRCP_CHECK(config.start_prob >= 0.0 && config.start_prob <= 1.0);

  // Independent streams per stochastic component, so e.g. changing p does
  // not perturb the sampled task sizes.
  RandomStream arrivals(config.seed, 0);
  RandomStream sizes(config.seed, 1);
  RandomStream exec_times(config.seed, 2);
  RandomStream starts(config.seed, 3);
  RandomStream deadlines(config.seed, 4);
  // Heterogeneity knobs draw from their own streams so enabling them (or
  // turning them off again) never perturbs the homogeneous samples above.
  RandomStream machines(config.seed, 5);
  RandomStream placement(config.seed, 6);

  for (int speed : config.speed_choices) {
    MRCP_CHECK_MSG(speed > 0, "speed choices must be positive permille");
  }
  MRCP_CHECK(config.num_racks >= 1);
  MRCP_CHECK(config.locality_prob >= 0.0 && config.locality_prob <= 1.0);
  MRCP_CHECK(config.affinity_prob >= 0.0 && config.affinity_prob <= 1.0);

  Workload w;
  if (config.speed_choices.empty() && config.num_racks <= 1) {
    w.cluster = Cluster::homogeneous(config.num_resources, config.map_capacity,
                                     config.reduce_capacity);
  } else {
    const DiscreteUniform speed_pick{
        0, static_cast<std::int64_t>(
               std::max<std::size_t>(config.speed_choices.size(), 1)) -
               1};
    for (int i = 0; i < config.num_resources; ++i) {
      const int speed =
          config.speed_choices.empty()
              ? kBaseSpeedPermille
              : config.speed_choices[static_cast<std::size_t>(
                    speed_pick.sample(machines))];
      w.cluster.add_resource_hetero(config.map_capacity,
                                    config.reduce_capacity, 0, speed,
                                    i % config.num_racks);
    }
  }
  const int total_map_slots = w.cluster.total_map_slots();
  const int total_reduce_slots = w.cluster.total_reduce_slots();

  const Exponential interarrival{config.arrival_rate};
  const DiscreteUniform map_exec{1, config.e_max};
  const Bernoulli future_start{config.start_prob};
  const DiscreteUniform start_offset{1, config.s_max};
  const Uniform deadline_mult{1.0, config.deadline_multiplier_ul};

  double arrival_seconds = 0.0;
  w.jobs.reserve(config.num_jobs);
  for (std::size_t i = 0; i < config.num_jobs; ++i) {
    Job job;
    job.id = static_cast<JobId>(i);
    arrival_seconds += interarrival.sample(arrivals);
    job.arrival_time = seconds_to_ticks(arrival_seconds);

    const auto k_mp = config.num_map_tasks.sample(sizes);
    const auto k_rd = config.num_reduce_tasks.sample(sizes);

    std::int64_t sum_me_seconds = 0;
    job.map_tasks.reserve(static_cast<std::size_t>(k_mp));
    for (std::int64_t t = 0; t < k_mp; ++t) {
      Task task;
      task.type = TaskType::kMap;
      const std::int64_t me_seconds = map_exec.sample(exec_times);
      task.exec_time = seconds_to_ticks(me_seconds);
      sum_me_seconds += me_seconds;
      job.map_tasks.push_back(task);
    }

    // re = (3 * sum(me)) / k_rd + DU[1,10]; integer division in seconds is
    // the natural reading of the paper's formula. The quotient can be 0
    // for tiny jobs; the additive DU[1,10] keeps durations positive.
    const std::int64_t base_re = (3 * sum_me_seconds) / k_rd;
    job.reduce_tasks.reserve(static_cast<std::size_t>(k_rd));
    for (std::int64_t t = 0; t < k_rd; ++t) {
      Task task;
      task.type = TaskType::kReduce;
      const std::int64_t re_seconds = base_re + config.reduce_extra.sample(exec_times);
      task.exec_time = seconds_to_ticks(re_seconds);
      job.reduce_tasks.push_back(task);
    }

    job.earliest_start = job.arrival_time;
    if (future_start.sample(starts)) {
      job.earliest_start += seconds_to_ticks(start_offset.sample(starts));
    }

    const Time te = job.min_execution_time(total_map_slots, total_reduce_slots);
    const double mult = deadline_mult.sample(deadlines);
    job.deadline =
        job.earliest_start + Time{std::llround(static_cast<double>(te.count()) * mult)};

    // Placement constraints. One anti-affinity group spans the first
    // min(k_rd, m) reduce tasks (so the group always fits the cluster);
    // grouped tasks keep the full candidate set — the documented
    // common-candidates guarantee the greedy fallback relies on.
    const Bernoulli wants_affinity{config.affinity_prob};
    const std::int64_t group_size =
        std::min<std::int64_t>(k_rd, config.num_resources);
    const bool grouped = config.affinity_prob > 0.0 && group_size >= 2 &&
                         wants_affinity.sample(placement);
    if (grouped) {
      for (std::int64_t t = 0; t < group_size; ++t) {
        job.reduce_tasks[static_cast<std::size_t>(t)].affinity_group = 0;
      }
    }
    if (config.locality_prob > 0.0) {
      const Bernoulli wants_locality{config.locality_prob};
      const std::int64_t m = config.num_resources;
      const DiscreteUniform subset_size{1, std::max<std::int64_t>(1, m / 2)};
      std::vector<ResourceId> ids(static_cast<std::size_t>(m));
      for (std::int64_t t = 0; t < k_mp + k_rd; ++t) {
        Task& task = t < k_mp
                         ? job.map_tasks[static_cast<std::size_t>(t)]
                         : job.reduce_tasks[static_cast<std::size_t>(t - k_mp)];
        if (task.affinity_group >= 0) continue;
        if (!wants_locality.sample(placement)) continue;
        // Partial Fisher-Yates: the first `s` entries become a uniform
        // random subset, emitted in the shuffled (deterministic) order.
        for (std::int64_t r = 0; r < m; ++r) {
          ids[static_cast<std::size_t>(r)] = static_cast<ResourceId>(r);
        }
        const std::int64_t s = subset_size.sample(placement);
        for (std::int64_t r = 0; r < s; ++r) {
          const std::int64_t pick = DiscreteUniform{r, m - 1}.sample(placement);
          std::swap(ids[static_cast<std::size_t>(r)],
                    ids[static_cast<std::size_t>(pick)]);
        }
        task.candidates.assign(ids.begin(), ids.begin() + s);
      }
    }

    w.jobs.push_back(std::move(job));
  }
  return w;
}

}  // namespace mrcp
