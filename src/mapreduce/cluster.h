// Cluster / resource model (paper §III.A).
//
// Each resource r has a map-task capacity c_r^mp (number of map slots)
// and a reduce-task capacity c_r^rd (number of reduce slots): the number
// of tasks of each phase it can run in parallel.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "mapreduce/job.h"

namespace mrcp {

struct Resource {
  ResourceId id = kNoResource;
  int map_capacity = 0;     ///< c_r^mp
  int reduce_capacity = 0;  ///< c_r^rd
  /// Network-link capacity shared by all tasks on this resource (§VII
  /// "communication links" extension). 0 = unconstrained.
  int net_capacity = 0;
  /// Machine speed in permille of the baseline: a task with base duration
  /// e runs for scale_duration(e, speed_permille) ticks here. 1000 keeps
  /// the homogeneous model bit-identical.
  int speed_permille = kBaseSpeedPermille;
  /// Rack the machine lives in. Used by rack-locality task constraints and
  /// rack-correlated fault injection. Rack 0 is the default single rack.
  int rack = 0;

  int capacity(TaskType type) const {
    return type == TaskType::kMap ? map_capacity : reduce_capacity;
  }

  /// Effective running time of a task with the given base duration.
  Time scaled_duration(Time base) const {
    return scale_duration(base, speed_permille);
  }
};

class Cluster {
 public:
  Cluster() = default;

  /// Homogeneous cluster: `m` resources, each with the given capacities.
  /// net_capacity 0 means links are unconstrained.
  static Cluster homogeneous(int m, int map_capacity, int reduce_capacity,
                             int net_capacity = 0);

  void add_resource(int map_capacity, int reduce_capacity,
                    int net_capacity = 0);

  /// Heterogeneous variant: speed in permille of the baseline (must be
  /// positive) plus the rack the machine lives in (must be non-negative).
  void add_resource_hetero(int map_capacity, int reduce_capacity,
                           int net_capacity, int speed_permille, int rack);

  /// Overwrite a resource's slot capacities, keeping its link capacity.
  /// Unlike add_resource this permits zero slots — the fault layer uses
  /// it to take a failed resource out of service (and to restore it).
  void set_resource_capacity(ResourceId id, int map_capacity,
                             int reduce_capacity);

  int size() const { return static_cast<int>(resources_.size()); }
  const Resource& resource(ResourceId id) const;
  const std::vector<Resource>& resources() const { return resources_; }

  int total_map_slots() const { return total_map_slots_; }
  int total_reduce_slots() const { return total_reduce_slots_; }
  int total_slots(TaskType type) const {
    return type == TaskType::kMap ? total_map_slots_ : total_reduce_slots_;
  }

  /// The §V.D "single combined resource": one resource holding the summed
  /// capacity of the whole cluster. Only meaningful for uniform-speed
  /// clusters (see uniform_speed_permille); the combined resource carries
  /// that common speed.
  Resource combined_resource() const;

  /// The common speed if every resource runs at the same speed_permille,
  /// or -1 for a mixed-speed cluster.
  int uniform_speed_permille() const;

  /// Distinct rack ids present in the cluster, sorted ascending.
  std::vector<int> rack_ids() const;

  /// True if some rack id equals `rack`.
  bool has_rack(int rack) const;

  std::string to_string() const;

 private:
  std::vector<Resource> resources_;
  int total_map_slots_ = 0;
  int total_reduce_slots_ = 0;
};

}  // namespace mrcp
