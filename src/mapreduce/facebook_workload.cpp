#include "mapreduce/facebook_workload.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace mrcp {

const std::array<FacebookJobType, 10>& facebook_job_mix() {
  static const std::array<FacebookJobType, 10> kMix = {{
      {1, 0, 380},
      {2, 0, 160},
      {10, 3, 140},
      {50, 0, 80},
      {100, 0, 60},
      {200, 50, 60},
      {400, 0, 40},
      {800, 180, 40},
      {2400, 360, 20},
      {4800, 0, 20},
  }};
  return kMix;
}

namespace {

/// Largest-remainder apportionment of the Table 4 mix to `n` jobs.
std::vector<int> apportion_types(std::size_t n) {
  const auto& mix = facebook_job_mix();
  std::vector<int> counts(mix.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    const double exact =
        static_cast<double>(n) * mix[i].count_per_1000 / 1000.0;
    counts[i] = static_cast<int>(exact);
    assigned += static_cast<std::size_t>(counts[i]);
    remainders.emplace_back(exact - std::floor(exact), i);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t k = 0; assigned < n; ++k, ++assigned) {
    ++counts[remainders[k % remainders.size()].second];
  }
  std::vector<int> types;
  types.reserve(n);
  for (std::size_t i = 0; i < mix.size(); ++i) {
    for (int c = 0; c < counts[i]; ++c) types.push_back(static_cast<int>(i));
  }
  return types;
}

Time sample_exec_ms(const LogNormal& dist, RandomStream& rng) {
  // LogNormal values are milliseconds; 1 tick = 1 ms. Clamp to >= 1 tick.
  const double ms = dist.sample(rng);
  return std::max(Time{1}, Time{std::llround(ms)});
}

}  // namespace

Workload generate_facebook_workload(const FacebookWorkloadConfig& config) {
  MRCP_CHECK(config.num_jobs > 0);
  MRCP_CHECK(config.arrival_rate > 0.0);

  RandomStream mix_rng(config.seed, 0);
  RandomStream arrivals(config.seed, 1);
  RandomStream exec_times(config.seed, 2);
  RandomStream deadlines(config.seed, 3);

  std::vector<int> types = apportion_types(config.num_jobs);
  mix_rng.shuffle(types.begin(), types.end());

  Workload w;
  w.cluster = Cluster::homogeneous(config.num_resources, config.map_capacity,
                                   config.reduce_capacity);
  const int total_map_slots = w.cluster.total_map_slots();
  const int total_reduce_slots = w.cluster.total_reduce_slots();

  const Exponential interarrival{config.arrival_rate};
  const Uniform deadline_mult{1.0, config.deadline_multiplier_ul};

  double arrival_seconds = 0.0;
  w.jobs.reserve(config.num_jobs);
  for (std::size_t i = 0; i < config.num_jobs; ++i) {
    const FacebookJobType& type = facebook_job_mix()[static_cast<std::size_t>(types[i])];
    Job job;
    job.id = static_cast<JobId>(i);
    arrival_seconds += interarrival.sample(arrivals);
    job.arrival_time = seconds_to_ticks(arrival_seconds);
    job.earliest_start = job.arrival_time;  // p = 0 for this workload

    job.map_tasks.reserve(static_cast<std::size_t>(type.map_tasks));
    for (int t = 0; t < type.map_tasks; ++t) {
      Task task;
      task.type = TaskType::kMap;
      task.exec_time = sample_exec_ms(config.map_exec_ms, exec_times);
      job.map_tasks.push_back(std::move(task));
    }
    job.reduce_tasks.reserve(static_cast<std::size_t>(type.reduce_tasks));
    for (int t = 0; t < type.reduce_tasks; ++t) {
      Task task;
      task.type = TaskType::kReduce;
      task.exec_time = sample_exec_ms(config.reduce_exec_ms, exec_times);
      job.reduce_tasks.push_back(std::move(task));
    }

    const Time te = job.min_execution_time(total_map_slots, total_reduce_slots);
    const double mult = deadline_mult.sample(deadlines);
    job.deadline = job.earliest_start +
                   Time{std::llround(static_cast<double>(te.count()) * mult)};

    w.jobs.push_back(std::move(job));
  }
  return w;
}

}  // namespace mrcp
