// Synthetic factor-at-a-time workload generator (paper Table 3).
//
// Per-job parameters, with values in seconds exactly as in the paper:
//   k_mp ~ DU[1, 100]                       number of map tasks
//   k_rd ~ DU[1, 100]                       number of reduce tasks
//   me   ~ DU[1, e_max]                     map task exec time
//   re   = (3 * sum(me)) / k_rd + DU[1,10]  reduce task exec time
//   s_j  = v_j                    w.p. 1-p
//        = v_j + DU[1, s_max]     w.p. p        (AR requests)
//   d_j  = s_j + TE * U[1, d_UL]
//   inter-arrival ~ Exponential(lambda)     (Poisson arrivals)
// System: m homogeneous resources with c_mp map slots and c_rd reduce
// slots each.
//
// Defaults are the paper's boldface defaults where stated; where the
// scanned table is ambiguous we take the middle of each listed range
// (documented in EXPERIMENTS.md): e_max=50, p=0.5, s_max=50000, d_UL=5,
// lambda=0.01 jobs/s, m=50, c_mp=c_rd=2.
//
// TE is the job's minimum execution time alone on the full cluster.
#pragma once

#include <cstdint>
#include <vector>

#include "common/distributions.h"
#include "mapreduce/workload.h"

namespace mrcp {

struct SyntheticWorkloadConfig {
  std::size_t num_jobs = 100;

  DiscreteUniform num_map_tasks{1, 100};
  DiscreteUniform num_reduce_tasks{1, 100};

  std::int64_t e_max = 50;  ///< map exec time ~ DU[1, e_max] seconds
  DiscreteUniform reduce_extra{1, 10};  ///< additive DU[1,10] term of re

  double start_prob = 0.5;        ///< p: P(s_j > v_j)
  std::int64_t s_max = 50000;     ///< upper bound of DU[1, s_max] added to v_j (s)
  double deadline_multiplier_ul = 5.0;  ///< d_UL: d_j = s_j + TE*U[1, d_UL]
  double arrival_rate = 0.01;     ///< lambda, jobs per second

  int num_resources = 50;   ///< m
  int map_capacity = 2;     ///< c_mp per resource
  int reduce_capacity = 2;  ///< c_rd per resource

  /// Heterogeneity extensions (all default OFF so the paper's homogeneous
  /// Table 3 workloads are bit-identical to earlier versions; the knobs
  /// draw from dedicated RNG streams for the same reason).
  /// Machine speeds in permille, sampled uniformly per resource. Empty =
  /// homogeneous baseline speed (1000).
  std::vector<int> speed_choices;
  /// Number of racks machines are striped across. <= 1 = single rack 0.
  int num_racks = 1;
  /// Per-task probability of a data-locality candidate set (a uniform
  /// 1..m/2-sized random subset of resources). 0 = no locality.
  double locality_prob = 0.0;
  /// Per-job probability that its reduce tasks form one anti-affinity
  /// group (capped at the cluster size so the group stays satisfiable,
  /// and only applied when the group would have >= 2 members). 0 = off.
  double affinity_prob = 0.0;

  std::uint64_t seed = 1;
};

/// Generate a workload per Table 3. Jobs are produced in arrival order
/// with dense ids. Deterministic for a fixed config.
Workload generate_synthetic_workload(const SyntheticWorkloadConfig& config);

}  // namespace mrcp
