#include "mapreduce/job.h"

#include <algorithm>
#include <queue>
#include <sstream>

#include "common/check.h"

namespace mrcp {

const char* task_type_name(TaskType type) {
  return type == TaskType::kMap ? "map" : "reduce";
}

const Task& Job::task(std::size_t flat_index) const {
  MRCP_CHECK(flat_index < num_tasks());
  if (flat_index < map_tasks.size()) return map_tasks[flat_index];
  return reduce_tasks[flat_index - map_tasks.size()];
}

namespace {
Time sum_time(const std::vector<Task>& tasks) {
  Time total{};
  for (const Task& t : tasks) total += t.exec_time;
  return total;
}
Time max_time(const std::vector<Task>& tasks) {
  Time best{};
  for (const Task& t : tasks) best = std::max(best, t.exec_time);
  return best;
}
}  // namespace

Time Job::total_map_time() const { return sum_time(map_tasks); }
Time Job::total_reduce_time() const { return sum_time(reduce_tasks); }
Time Job::max_map_time() const { return max_time(map_tasks); }
Time Job::max_reduce_time() const { return max_time(reduce_tasks); }

Time lpt_makespan(std::vector<Time> durations, int machines) {
  MRCP_CHECK(machines >= 1);
  if (durations.empty()) return Time{0};
  std::sort(durations.begin(), durations.end(), std::greater<>());
  // min-heap of machine finish times
  std::priority_queue<Time, std::vector<Time>, std::greater<>> finish;
  for (int i = 0; i < machines; ++i) finish.push(Time{0});
  for (Time d : durations) {
    Time earliest = finish.top();
    finish.pop();
    finish.push(earliest + d);
  }
  Time makespan{};
  while (!finish.empty()) {
    makespan = finish.top();
    finish.pop();
  }
  return makespan;
}

Time Job::min_execution_time(int map_slots, int reduce_slots) const {
  std::vector<Time> maps;
  maps.reserve(map_tasks.size());
  for (const Task& t : map_tasks) maps.push_back(t.exec_time);
  std::vector<Time> reduces;
  reduces.reserve(reduce_tasks.size());
  for (const Task& t : reduce_tasks) reduces.push_back(t.exec_time);
  Time te = lpt_makespan(std::move(maps), map_slots);
  if (!reduces.empty()) te += lpt_makespan(std::move(reduces), reduce_slots);
  return te;
}

std::string Job::to_string() const {
  std::ostringstream os;
  os << "Job{id=" << id << ", v=" << arrival_time << ", s=" << earliest_start
     << ", d=" << deadline << ", maps=" << map_tasks.size()
     << ", reduces=" << reduce_tasks.size() << ", work=" << total_work() << "}";
  return os.str();
}

std::string validate_job(const Job& job) {
  std::ostringstream os;
  if (job.id < 0) return "job id is negative";
  if (job.arrival_time < Time{0}) return "arrival time is negative";
  if (job.earliest_start < job.arrival_time)
    return "earliest start precedes arrival";
  if (job.deadline <= job.earliest_start) return "deadline at or before s_j";
  if (job.num_tasks() == 0) return "job has no tasks";
  auto check_placement = [](const Task& t, const char* phase) -> std::string {
    std::vector<ResourceId> c = t.candidates;
    std::sort(c.begin(), c.end());
    if (!c.empty() && c.front() < 0) {
      return std::string(phase) + " task with negative candidate resource";
    }
    if (std::adjacent_find(c.begin(), c.end()) != c.end()) {
      return std::string(phase) + " task with duplicate candidate resource";
    }
    std::vector<int> r = t.racks;
    std::sort(r.begin(), r.end());
    if (!r.empty() && r.front() < 0) {
      return std::string(phase) + " task with negative rack id";
    }
    if (std::adjacent_find(r.begin(), r.end()) != r.end()) {
      return std::string(phase) + " task with duplicate rack id";
    }
    if (t.affinity_group < -1) {
      return std::string(phase) + " task with affinity group below -1";
    }
    return "";
  };
  for (const Task& t : job.map_tasks) {
    if (t.type != TaskType::kMap) return "map list contains non-map task";
    if (t.exec_time <= Time{0}) return "map task with non-positive exec time";
    if (t.res_req < 1) return "map task with res_req < 1";
    if (t.net_demand < 0) return "map task with negative net demand";
    if (std::string err = check_placement(t, "map"); !err.empty()) return err;
  }
  for (const Task& t : job.reduce_tasks) {
    if (t.type != TaskType::kReduce) return "reduce list contains non-reduce task";
    if (t.exec_time <= Time{0}) return "reduce task with non-positive exec time";
    if (t.res_req < 1) return "reduce task with res_req < 1";
    if (t.net_demand < 0) return "reduce task with negative net demand";
    if (std::string err = check_placement(t, "reduce"); !err.empty()) return err;
  }

  // User precedences: indices in range, no self-loops, and the combined
  // graph (user edges plus the implicit all-maps-before-all-reduces
  // barrier) must be acyclic. The barrier is modelled as a virtual node
  // so the check stays O(tasks + edges) even for huge jobs.
  if (!job.precedences.empty()) {
    const int n = static_cast<int>(job.num_tasks());
    const int k_m = static_cast<int>(job.num_map_tasks());
    const int barrier = n;  // virtual node: maps -> barrier -> reduces
    std::vector<std::vector<int>> adj(static_cast<std::size_t>(n) + 1);
    std::vector<int> indeg(static_cast<std::size_t>(n) + 1, 0);
    auto add_edge = [&](int u, int v) {
      adj[static_cast<std::size_t>(u)].push_back(v);
      ++indeg[static_cast<std::size_t>(v)];
    };
    for (const auto& [before, after] : job.precedences) {
      if (before < 0 || before >= n || after < 0 || after >= n) {
        return "precedence index out of range";
      }
      if (before == after) return "precedence self-loop";
      add_edge(before, after);
    }
    for (int m = 0; m < k_m; ++m) add_edge(m, barrier);
    for (int r = k_m; r < n; ++r) add_edge(barrier, r);
    // Kahn's algorithm.
    std::vector<int> queue;
    for (int v = 0; v <= n; ++v) {
      if (indeg[static_cast<std::size_t>(v)] == 0) queue.push_back(v);
    }
    std::size_t processed = 0;
    while (processed < queue.size()) {
      const int u = queue[processed++];
      for (int v : adj[static_cast<std::size_t>(u)]) {
        if (--indeg[static_cast<std::size_t>(v)] == 0) queue.push_back(v);
      }
    }
    if (processed != static_cast<std::size_t>(n) + 1) {
      return "precedence graph has a cycle";
    }
  }
  return "";
}

}  // namespace mrcp
