// MapReduce job/task model (paper §III.A).
//
// A job j carries an SLA: earliest start time s_j, per-task execution
// times e_t, and an end-to-end deadline d_j. Tasks come in two phases;
// every reduce task of a job may start only after ALL of the job's map
// tasks have completed. Task resource requirement q_t is 1 by default
// (paper: "the value of q_t is typically set to one").
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace mrcp {

enum class TaskType : std::uint8_t { kMap = 0, kReduce = 1 };

const char* task_type_name(TaskType type);

/// One map or reduce task. Immutable workload data; runtime scheduling
/// state (assigned resource/start, started/completed flags) lives in the
/// resource manager, not here.
struct Task {
  TaskType type = TaskType::kMap;
  Time exec_time;  ///< e_t, in ticks; includes input read + shuffle (paper §III.A)
  int res_req = 1;     ///< q_t, slots consumed while running
  /// Network-link bandwidth units consumed while running (the paper's
  /// §VII "communication links" extension). 0 = no link usage. Only
  /// constrained on resources with net_capacity > 0.
  int net_demand = 0;
  /// Data-locality candidate set: resource ids this task may run on.
  /// Empty = any resource. Ids must exist in the cluster and be distinct
  /// (validate_workload).
  std::vector<ResourceId> candidates;
  /// Rack-locality set: racks this task may run in. Empty = any rack.
  /// Composes with `candidates` — the effective host set is their
  /// intersection.
  std::vector<int> racks;
  /// Anti-affinity group within the job: tasks sharing a non-negative
  /// group id must run on pairwise-distinct resources. -1 = no group.
  int affinity_group = -1;

  /// True if this task carries any placement restriction.
  bool placement_constrained() const {
    return !candidates.empty() || !racks.empty() || affinity_group >= 0;
  }
};

/// A MapReduce job with its SLA.
struct Job {
  JobId id = kNoJob;
  Time arrival_time;        ///< v_j: when the job enters the system
  Time earliest_start;      ///< s_j >= v_j: SLA earliest start (AR requests)
  Time deadline;            ///< d_j: end-to-end SLA deadline

  std::vector<Task> map_tasks;
  std::vector<Task> reduce_tasks;

  /// Extra user-specified precedence constraints between this job's
  /// tasks, as (before, after) flat indices: `after` may start only once
  /// `before` has completed. These come *in addition to* the implicit
  /// MapReduce rule (every reduce waits for all maps) and enable general
  /// multi-stage workflows — the generalization the paper's §VII lists
  /// as future work. The combined precedence graph must be acyclic
  /// (checked by validate_job).
  std::vector<std::pair<int, int>> precedences;

  std::size_t num_map_tasks() const { return map_tasks.size(); }
  std::size_t num_reduce_tasks() const { return reduce_tasks.size(); }
  std::size_t num_tasks() const { return map_tasks.size() + reduce_tasks.size(); }

  /// Task lookup by phase-local index; maps come first in the flat order.
  const Task& task(std::size_t flat_index) const;

  Time total_map_time() const;
  Time total_reduce_time() const;
  Time max_map_time() const;
  Time max_reduce_time() const;

  /// Sum of all task execution times (used in the laxity formula
  /// L_j = d_j - s_j - sum of e_t, paper §VI.B).
  Time total_work() const { return total_map_time() + total_reduce_time(); }

  Time laxity() const { return deadline - earliest_start - total_work(); }

  /// TE: minimum execution time of the job assuming it is alone on a
  /// cluster with `map_slots` map slots and `reduce_slots` reduce slots
  /// (paper Table 3). Computed as the LPT list-schedule makespan of the
  /// map phase plus that of the reduce phase, since reduces must wait for
  /// all maps. Jobs with zero reduce tasks contribute only the map phase.
  Time min_execution_time(int map_slots, int reduce_slots) const;

  std::string to_string() const;
};

/// LPT (longest processing time first) list-schedule makespan of the given
/// durations on `machines` identical machines. Exposed for testing and for
/// the MinEDF-WC completion-time estimator.
Time lpt_makespan(std::vector<Time> durations, int machines);

/// Validate internal consistency of a job (non-negative times,
/// s_j >= v_j, d_j > s_j, positive task durations, res_req >= 1).
/// Returns an empty string when valid, else a description of the problem.
std::string validate_job(const Job& job);

}  // namespace mrcp
