// Facebook-derived workload generator (paper §VI.B.1, Table 4).
//
// The paper evaluates MRCP-RM against MinEDF-WC on a synthetic workload
// generated from October 2009 Facebook trace fits, also used by Verma et
// al. [8]:
//   * 10 job types with fixed (k_mp, k_rd) and a fixed mix per 1000 jobs
//     (Table 4);
//   * map task execution times ~ LogNormal(9.9511, 1.6764) ms;
//   * reduce task execution times ~ LogNormal(12.375, 1.6262) ms;
//   * s_j = v_j (p = 0); d_j = s_j + TE * U[1, 2];
//   * Poisson arrivals; 64 resources, each with 1 map + 1 reduce slot.
#pragma once

#include <array>
#include <cstdint>

#include "common/distributions.h"
#include "mapreduce/workload.h"

namespace mrcp {

/// One Table 4 row: job shape and its frequency per 1000 jobs.
struct FacebookJobType {
  int map_tasks;
  int reduce_tasks;
  int count_per_1000;
};

/// The Table 4 mix (sums to 1000).
const std::array<FacebookJobType, 10>& facebook_job_mix();

struct FacebookWorkloadConfig {
  std::size_t num_jobs = 1000;
  double arrival_rate = 0.0005;  ///< lambda, jobs per second (paper: 1e-4..5e-4)
  double deadline_multiplier_ul = 2.0;  ///< d_M = 2 in the comparison

  LogNormal map_exec_ms{9.9511, 1.6764};
  LogNormal reduce_exec_ms{12.375, 1.6262};

  int num_resources = 64;
  int map_capacity = 1;
  int reduce_capacity = 1;

  std::uint64_t seed = 1;
};

/// Generate the workload. The job-type mix is exact (largest-remainder
/// apportionment of Table 4 counts to `num_jobs`), with the type sequence
/// shuffled; execution times and arrivals are sampled per config.
Workload generate_facebook_workload(const FacebookWorkloadConfig& config);

}  // namespace mrcp
