#include "mapreduce/workload.h"

#include <sstream>

#include "common/stats.h"

namespace mrcp {

Workload::Summary Workload::summarize() const {
  Summary s;
  if (jobs.empty()) return s;
  RunningStat maps, reduces, map_exec, reduce_exec, inter, laxity;
  Time total_work{};
  std::size_t future_start = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& j = jobs[i];
    maps.add(static_cast<double>(j.num_map_tasks()));
    reduces.add(static_cast<double>(j.num_reduce_tasks()));
    for (const Task& t : j.map_tasks)
      map_exec.add(ticks_to_seconds(t.exec_time));
    for (const Task& t : j.reduce_tasks)
      reduce_exec.add(ticks_to_seconds(t.exec_time));
    if (i > 0)
      inter.add(ticks_to_seconds(j.arrival_time - jobs[i - 1].arrival_time));
    laxity.add(ticks_to_seconds(j.laxity()));
    if (j.earliest_start > j.arrival_time) ++future_start;
    total_work += j.total_work();
  }
  s.mean_map_tasks = maps.mean();
  s.mean_reduce_tasks = reduces.mean();
  s.mean_map_exec_seconds = map_exec.mean();
  s.mean_reduce_exec_seconds = reduce_exec.mean();
  s.mean_interarrival_seconds = inter.mean();
  s.mean_laxity_seconds = laxity.mean();
  s.fraction_future_start =
      static_cast<double>(future_start) / static_cast<double>(jobs.size());
  const Time span = jobs.back().arrival_time - jobs.front().arrival_time;
  const int slots = cluster.total_map_slots() + cluster.total_reduce_slots();
  if (span > Time{0} && slots > 0) {
    s.offered_utilization = static_cast<double>(total_work.count()) /
                            (static_cast<double>(span.count()) * slots);
  }
  return s;
}

std::string Workload::to_string() const {
  std::ostringstream os;
  os << "Workload{jobs=" << jobs.size() << ", " << cluster.to_string() << "}";
  return os.str();
}

std::string validate_workload(const Workload& w) {
  if (w.cluster.size() == 0) return "workload has empty cluster";
  for (std::size_t i = 0; i < w.jobs.size(); ++i) {
    const Job& j = w.jobs[i];
    if (j.id != static_cast<JobId>(i)) {
      return "job ids are not dense/in order at index " + std::to_string(i);
    }
    if (i > 0 && j.arrival_time < w.jobs[i - 1].arrival_time) {
      return "arrival times not sorted at index " + std::to_string(i);
    }
    std::string err = validate_job(j);
    if (!err.empty()) return "job " + std::to_string(j.id) + ": " + err;
    // Placement references must resolve against this cluster: candidate
    // resource ids in range, rack ids actually present on some machine.
    for (std::size_t ti = 0; ti < j.num_tasks(); ++ti) {
      const Task& t = j.task(ti);
      for (ResourceId c : t.candidates) {
        if (c < 0 || c >= w.cluster.size()) {
          return "job " + std::to_string(j.id) + ": task " +
                 std::to_string(ti) + " names candidate resource " +
                 std::to_string(c) + " outside the cluster";
        }
      }
      for (int rack : t.racks) {
        if (!w.cluster.has_rack(rack)) {
          return "job " + std::to_string(j.id) + ": task " +
                 std::to_string(ti) + " names rack " + std::to_string(rack) +
                 " that no resource lives in";
        }
      }
    }
  }
  return "";
}

}  // namespace mrcp
