#include "mapreduce/workload_io.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/io/file_io.h"

namespace mrcp {

namespace {
constexpr const char* kMagic = "mrcp-workload v1";

/// Fuzz-hardening bounds. Counts in the header are attacker-controlled
/// (the format is an interchange format), so they must not drive
/// allocations or arithmetic before the corresponding lines have
/// actually been parsed.
constexpr std::int64_t kMaxReserveJobs = 1 << 16;
constexpr std::int64_t kMaxTasksPerJob = 1 << 24;

/// True iff v fits in int — the narrower type used by Task::res_req,
/// net demands, capacities and precedence indices. Rejecting here keeps
/// a 2^32+k res_req from silently truncating to k.
bool fits_int(std::int64_t v) {
  return v >= std::numeric_limits<int>::min() &&
         v <= std::numeric_limits<int>::max();
}
}  // namespace

void save_workload(const Workload& workload, std::ostream& out) {
  out << kMagic << '\n';
  out << "cluster " << workload.cluster.size() << '\n';
  for (const Resource& r : workload.cluster.resources()) {
    out << "resource " << r.map_capacity << ' ' << r.reduce_capacity << ' '
        << r.net_capacity;
    // The five-field heterogeneous form only when it differs from the
    // defaults, so files for homogeneous clusters stay byte-identical to
    // the pre-heterogeneity format.
    if (r.speed_permille != kBaseSpeedPermille || r.rack != 0) {
      out << ' ' << r.speed_permille << ' ' << r.rack;
    }
    out << '\n';
  }
  out << "jobs " << workload.jobs.size() << '\n';
  for (const Job& j : workload.jobs) {
    out << "job " << j.id << ' ' << j.arrival_time << ' ' << j.earliest_start
        << ' ' << j.deadline << ' ' << j.map_tasks.size() << ' '
        << j.reduce_tasks.size() << '\n';
    for (const Task& t : j.map_tasks) {
      out << "task " << t.exec_time << ' ' << t.res_req << ' ' << t.net_demand
          << '\n';
    }
    for (const Task& t : j.reduce_tasks) {
      out << "task " << t.exec_time << ' ' << t.res_req << ' ' << t.net_demand
          << '\n';
    }
    // Placement trailer lines reference tasks by flat index (maps first),
    // like precedence lines, and are omitted for unconstrained tasks so
    // placement-free workloads serialize exactly as before.
    for (std::size_t ti = 0; ti < j.num_tasks(); ++ti) {
      const Task& t = j.task(ti);
      if (!t.candidates.empty()) {
        out << "locality " << ti;
        for (ResourceId c : t.candidates) out << ' ' << c;
        out << '\n';
      }
      if (!t.racks.empty()) {
        out << "racks " << ti;
        for (int rack : t.racks) out << ' ' << rack;
        out << '\n';
      }
      if (t.affinity_group >= 0) {
        out << "affinity " << ti << ' ' << t.affinity_group << '\n';
      }
    }
    for (const auto& [before, after] : j.precedences) {
      out << "precedence " << before << ' ' << after << '\n';
    }
  }
}

std::string workload_to_string(const Workload& workload) {
  std::ostringstream os;
  save_workload(workload, os);
  return os.str();
}

bool save_workload_file(const Workload& workload, const std::string& path) {
  // Routed through the sanctioned raw-I/O home (mrcp-lint raw-file-io).
  return io::write_text_file(path, workload_to_string(workload));
}

namespace {

class Parser {
 public:
  explicit Parser(std::istream& in) : in_(in) {}

  /// Next non-comment, non-empty line; false at EOF.
  bool next_line(std::string& line) {
    while (true) {
      // Remember where the line starts so errors can point at the exact
      // byte, not just the line (workload files are machine-generated
      // and often one long line-per-record stream).
      const auto pos = in_.tellg();
      if (!std::getline(in_, line)) return false;
      ++line_number_;
      if (pos != std::istream::pos_type(-1)) {
        line_start_ = static_cast<std::int64_t>(pos);
      }
      // Trim trailing CR for files written on other platforms.
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty() || line[0] == '#') continue;
      ++record_index_;
      return true;
    }
  }

  /// Location of the last line handed out: line number, byte offset of
  /// its first character, and its 1-based record index (comments and
  /// blank lines don't count as records).
  [[nodiscard]] std::string where() const {
    return "line " + std::to_string(line_number_) + " (byte " +
           std::to_string(line_start_) + ", record " +
           std::to_string(record_index_) + ")";
  }

 private:
  std::istream& in_;
  int line_number_ = 0;
  std::int64_t line_start_ = 0;
  std::int64_t record_index_ = 0;
};

bool fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

/// Parse `expected_tag <index> v1 v2 ...` — a task-indexed line with a
/// variable-length, non-empty integer list (locality / racks trailers).
bool parse_indexed_list(const std::string& line,
                        const std::string& expected_tag, std::int64_t& index,
                        std::vector<std::int64_t>& values) {
  std::istringstream is(line);
  std::string tag;
  if (!(is >> tag) || tag != expected_tag) return false;
  if (!(is >> index)) return false;
  values.clear();
  std::int64_t v = 0;
  while (is >> v) values.push_back(v);
  // A clean parse consumes the whole line; a non-integer trailing token
  // leaves characters behind (failbit without eofbit).
  return is.eof() && !values.empty();
}

/// Parse `expected_tag v1 v2 ...` into the given integers.
template <typename... Ints>
bool parse_tagged(const std::string& line, const std::string& expected_tag,
                  Ints&... values) {
  std::istringstream is(line);
  std::string tag;
  if (!(is >> tag) || tag != expected_tag) return false;
  const bool ok = (static_cast<bool>(is >> values) && ...);
  if (!ok) return false;
  std::string extra;
  return !(is >> extra);  // no trailing tokens
}

bool parse_workload(std::istream& in, Workload& workload, std::string* error) {
  Parser parser(in);
  std::string line;

  if (!parser.next_line(line) || line != kMagic) {
    return fail(error, "missing/unsupported header (expected '" +
                           std::string(kMagic) + "')");
  }
  std::int64_t num_resources = 0;
  if (!parser.next_line(line) ||
      !parse_tagged(line, "cluster", num_resources) || num_resources < 1) {
    return fail(error, parser.where() + ": expected 'cluster <m>'");
  }
  for (std::int64_t r = 0; r < num_resources; ++r) {
    std::int64_t map_cap = 0;
    std::int64_t reduce_cap = 0;
    std::int64_t net_cap = 0;
    std::int64_t speed = kBaseSpeedPermille;
    std::int64_t rack = 0;
    if (!parser.next_line(line)) {
      return fail(error, parser.where() + ": expected 'resource <mp> <rd>'");
    }
    // Five-field heterogeneous form (speed permille + rack), the
    // three-field form (with link capacity), or the two-field legacy form.
    // Speeds are integer permille on purpose: a textual "NaN" or any
    // fractional value fails the integer parse rather than sneaking a
    // non-finite factor into tick arithmetic.
    if (!parse_tagged(line, "resource", map_cap, reduce_cap, net_cap, speed,
                      rack) &&
        !parse_tagged(line, "resource", map_cap, reduce_cap, net_cap) &&
        !parse_tagged(line, "resource", map_cap, reduce_cap)) {
      return fail(error, parser.where() + ": expected 'resource <mp> <rd>'");
    }
    if (map_cap < 0 || reduce_cap < 0 || net_cap < 0 || !fits_int(map_cap) ||
        !fits_int(reduce_cap) || !fits_int(net_cap) ||
        map_cap + reduce_cap == 0) {
      return fail(error, parser.where() + ": invalid resource capacities");
    }
    if (speed <= 0 || !fits_int(speed)) {
      return fail(error,
                  parser.where() + ": resource speed must be a positive " +
                      "integer (permille of baseline)");
    }
    if (rack < 0 || !fits_int(rack)) {
      return fail(error, parser.where() + ": resource rack must be a " +
                             "non-negative integer");
    }
    workload.cluster.add_resource_hetero(
        static_cast<int>(map_cap), static_cast<int>(reduce_cap),
        static_cast<int>(net_cap), static_cast<int>(speed),
        static_cast<int>(rack));
  }

  std::int64_t num_jobs = 0;
  if (!parser.next_line(line) || !parse_tagged(line, "jobs", num_jobs) ||
      num_jobs < 0) {
    return fail(error, parser.where() + ": expected 'jobs <n>'");
  }
  // Reserve only up to a cap: the count is untrusted input, and a bogus
  // huge value must not trigger a giant allocation before any job line
  // has been seen (larger legitimate workloads just grow amortized).
  workload.jobs.reserve(
      static_cast<std::size_t>(std::min(num_jobs, kMaxReserveJobs)));

  bool have_pending = false;
  std::string pending;
  for (std::int64_t ji = 0; ji < num_jobs; ++ji) {
    if (!have_pending && !parser.next_line(pending)) {
      return fail(error, parser.where() + ": unexpected EOF (expected 'job')");
    }
    have_pending = false;
    std::int64_t id = 0;
    std::int64_t arrival = 0;
    std::int64_t est = 0;
    std::int64_t deadline = 0;
    std::int64_t k_map = 0;
    std::int64_t k_reduce = 0;
    if (!parse_tagged(pending, "job", id, arrival, est, deadline, k_map,
                      k_reduce) ||
        k_map < 0 || k_reduce < 0 || k_map > kMaxTasksPerJob ||
        k_reduce > kMaxTasksPerJob) {
      // The per-count cap also keeps `k_map + k_reduce` below from
      // overflowing (signed overflow would be UB on hostile input).
      return fail(error, parser.where() + ": malformed 'job' line");
    }
    Job job;
    // Ids index per-job arrays throughout the simulator: enforce dense
    // in-order ids here, with a message that names the offending line
    // (validate_workload would catch this too, but only after the whole
    // file parsed and without the location).
    if (id != ji) {
      return fail(error, parser.where() + ": job ids must be dense and in " +
                             "order (expected " + std::to_string(ji) +
                             ", got " + std::to_string(id) + ")");
    }
    job.id = static_cast<JobId>(id);
    job.arrival_time = Time{arrival};
    job.earliest_start = Time{est};
    job.deadline = Time{deadline};
    for (std::int64_t t = 0; t < k_map + k_reduce; ++t) {
      std::int64_t exec = 0;
      std::int64_t req = 0;
      std::int64_t net = 0;
      if (!parser.next_line(line)) {
        return fail(error, parser.where() + ": expected 'task <exec> <req>'");
      }
      if ((!parse_tagged(line, "task", exec, req, net) &&
           !parse_tagged(line, "task", exec, req)) ||
          !fits_int(req) || !fits_int(net)) {
        return fail(error, parser.where() + ": expected 'task <exec> <req>'");
      }
      const TaskType type = t < k_map ? TaskType::kMap : TaskType::kReduce;
      Task task;
      task.type = type;
      task.exec_time = Time{exec};
      task.res_req = static_cast<int>(req);
      task.net_demand = static_cast<int>(net);
      (type == TaskType::kMap ? job.map_tasks : job.reduce_tasks)
          .push_back(std::move(task));
    }
    // Optional trailer lines (placement constraints and precedences)
    // until the next 'job' or EOF. Placement references are resolved
    // against the already-parsed cluster right here so a dangling rack or
    // candidate id is reported with the offending line's byte offset.
    auto task_at = [&](std::int64_t flat) -> Task* {
      if (flat < 0 || flat >= k_map + k_reduce) return nullptr;
      return flat < k_map
                 ? &job.map_tasks[static_cast<std::size_t>(flat)]
                 : &job.reduce_tasks[static_cast<std::size_t>(flat - k_map)];
    };
    while (parser.next_line(line)) {
      std::int64_t before = 0;
      std::int64_t after = 0;
      std::int64_t flat = 0;
      std::int64_t group = 0;
      std::vector<std::int64_t> values;
      if (parse_tagged(line, "precedence", before, after)) {
        if (!fits_int(before) || !fits_int(after)) {
          return fail(error, parser.where() + ": precedence index overflow");
        }
        job.precedences.emplace_back(static_cast<int>(before),
                                     static_cast<int>(after));
        continue;
      }
      if (parse_indexed_list(line, "locality", flat, values)) {
        Task* task = task_at(flat);
        if (task == nullptr) {
          return fail(error, parser.where() + ": locality task index out of " +
                                 "range");
        }
        if (!task->candidates.empty()) {
          return fail(error, parser.where() + ": duplicate locality line");
        }
        for (std::int64_t v : values) {
          if (v < 0 || v >= workload.cluster.size()) {
            return fail(error, parser.where() + ": locality names resource " +
                                   std::to_string(v) + " outside the cluster");
          }
          task->candidates.push_back(static_cast<ResourceId>(v));
        }
        continue;
      }
      if (parse_indexed_list(line, "racks", flat, values)) {
        Task* task = task_at(flat);
        if (task == nullptr) {
          return fail(error, parser.where() + ": racks task index out of " +
                                 "range");
        }
        if (!task->racks.empty()) {
          return fail(error, parser.where() + ": duplicate racks line");
        }
        for (std::int64_t v : values) {
          if (v < 0 || !fits_int(v) || !workload.cluster.has_rack(
                                           static_cast<int>(v))) {
            return fail(error, parser.where() + ": racks names rack " +
                                   std::to_string(v) +
                                   " that no resource lives in");
          }
          task->racks.push_back(static_cast<int>(v));
        }
        continue;
      }
      if (parse_tagged(line, "affinity", flat, group)) {
        Task* task = task_at(flat);
        if (task == nullptr) {
          return fail(error, parser.where() + ": affinity task index out of " +
                                 "range");
        }
        if (group < 0 || !fits_int(group)) {
          return fail(error, parser.where() + ": affinity group must be a " +
                                 "non-negative integer");
        }
        if (task->affinity_group >= 0) {
          return fail(error, parser.where() + ": duplicate affinity line");
        }
        task->affinity_group = static_cast<int>(group);
        continue;
      }
      pending = line;
      have_pending = true;
      break;
    }
    const std::string err = validate_job(job);
    if (!err.empty()) {
      return fail(error, parser.where() + ": job " + std::to_string(job.id) +
                             " invalid: " + err);
    }
    workload.jobs.push_back(std::move(job));
  }
  const std::string err = validate_workload(workload);
  if (!err.empty()) return fail(error, "workload invalid: " + err);
  return true;
}

}  // namespace

Workload load_workload(std::istream& in, std::string* error) {
  Workload workload;
  if (!parse_workload(in, workload, error)) return Workload{};
  if (error) error->clear();
  return workload;
}

Workload workload_from_string(const std::string& text, std::string* error) {
  std::istringstream is(text);
  return load_workload(is, error);
}

Workload load_workload_file(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return Workload{};
  }
  return load_workload(in, error);
}

}  // namespace mrcp
