#include "sim/cluster_sim.h"

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>

#include "baseline/minedf_wc.h"
#include "common/check.h"
#include "des/simulation.h"

namespace mrcp::sim {

namespace {

std::vector<JobRecord> make_records(const Workload& workload) {
  std::vector<JobRecord> records(workload.jobs.size());
  for (const Job& job : workload.jobs) {
    JobRecord& r = records[static_cast<std::size_t>(job.id)];
    r.id = job.id;
    r.arrival = job.arrival_time;
    r.earliest_start = job.earliest_start;
    r.deadline = job.deadline;
  }
  return records;
}

void finish_job(JobRecord& record, Time now) {
  MRCP_CHECK_MSG(!record.completed(), "job completed twice");
  record.completion = now;
  record.late = now > record.deadline;
}

}  // namespace

std::string validate_execution(const Workload& workload,
                               const std::vector<ExecutedTask>& executed) {
  // Every task of every job executed exactly once.
  std::size_t expected = 0;
  for (const Job& j : workload.jobs) expected += j.num_tasks();
  if (executed.size() != expected) {
    std::ostringstream os;
    os << "executed " << executed.size() << " tasks, expected " << expected;
    return os.str();
  }
  std::map<std::pair<JobId, int>, const ExecutedTask*> seen;
  std::map<std::pair<ResourceId, int>, std::map<Time, int>> deltas;
  std::map<JobId, Time> latest_map_end;

  for (const ExecutedTask& et : executed) {
    std::ostringstream where;
    where << "job " << et.job << " task " << et.task_index << ": ";
    if (et.job < 0 || static_cast<std::size_t>(et.job) >= workload.jobs.size()) {
      return where.str() + "unknown job";
    }
    const Job& job = workload.jobs[static_cast<std::size_t>(et.job)];
    if (et.task_index < 0 ||
        static_cast<std::size_t>(et.task_index) >= job.num_tasks()) {
      return where.str() + "bad task index";
    }
    if (!seen.emplace(std::make_pair(et.job, et.task_index), &et).second) {
      return where.str() + "executed twice";
    }
    const Task& task = job.task(static_cast<std::size_t>(et.task_index));
    if (et.end - et.start != task.exec_time) {
      return where.str() + "wrong duration";
    }
    if (et.start < job.earliest_start) {
      return where.str() + "started before s_j";
    }
    if (et.resource < 0 || et.resource >= workload.cluster.size()) {
      return where.str() + "bad resource";
    }
    deltas[{et.resource, static_cast<int>(task.type)}][et.start] += task.res_req;
    deltas[{et.resource, static_cast<int>(task.type)}][et.end] -= task.res_req;
    if (task.net_demand > 0 &&
        workload.cluster.resource(et.resource).net_capacity > 0) {
      deltas[{et.resource, 2}][et.start] += task.net_demand;
      deltas[{et.resource, 2}][et.end] -= task.net_demand;
    }
    if (task.type == TaskType::kMap) {
      auto [it, inserted] = latest_map_end.try_emplace(et.job, et.end);
      if (!inserted) it->second = std::max(it->second, et.end);
    }
  }
  // Precedence: reduces strictly after all maps of the job.
  for (const ExecutedTask& et : executed) {
    const Job& job = workload.jobs[static_cast<std::size_t>(et.job)];
    const Task& task = job.task(static_cast<std::size_t>(et.task_index));
    if (task.type == TaskType::kReduce) {
      auto it = latest_map_end.find(et.job);
      if (it != latest_map_end.end() && et.start < it->second) {
        return "job " + std::to_string(et.job) +
               ": reduce started before all maps finished";
      }
    }
  }
  // Workflow precedences (user-specified DAG edges).
  {
    std::map<std::pair<JobId, int>, const ExecutedTask*> by_key;
    for (const ExecutedTask& et : executed) {
      by_key[{et.job, et.task_index}] = &et;
    }
    for (const Job& job : workload.jobs) {
      for (const auto& [before, after] : job.precedences) {
        const ExecutedTask* b = by_key.at({job.id, before});
        const ExecutedTask* a = by_key.at({job.id, after});
        if (a->start < b->end) {
          return "job " + std::to_string(job.id) +
                 ": workflow precedence violated in execution";
        }
      }
    }
  }
  // Capacity sweeps (map slots, reduce slots, network links).
  for (const auto& [key, delta] : deltas) {
    const Resource& r = workload.cluster.resource(key.first);
    const int cap = key.second == 2
                        ? r.net_capacity
                        : r.capacity(static_cast<TaskType>(key.second));
    int usage = 0;
    for (const auto& [time, d] : delta) {
      usage += d;
      if (usage > cap) {
        std::ostringstream os;
        os << "resource " << key.first << " "
           << (key.second == 2   ? "net"
               : key.second == 0 ? "map"
                                 : "reduce")
           << " over capacity at t=" << time;
        return os.str();
      }
    }
  }
  return "";
}

SimMetrics simulate_mrcp(const Workload& workload, const MrcpConfig& config,
                         const SimOptions& options) {
  MRCP_CHECK_MSG(validate_workload(workload).empty(), "invalid workload");

  des::Simulation des;
  MrcpConfig rm_config = config;
  rm_config.validate_plans = rm_config.validate_plans || options.validate_plans;
  MrcpRm rm(workload.cluster, rm_config);

  SimMetrics metrics;
  metrics.records = make_records(workload);
  std::vector<ExecutedTask> executed;

  // Per-task driver state.
  struct TaskState {
    des::EventHandle end_event;
    bool started = false;
    ResourceId resource = kNoResource;
    Time start = kNoTime;
    Time end = kNoTime;
  };
  std::vector<std::vector<TaskState>> tasks(workload.jobs.size());
  std::vector<std::size_t> remaining(workload.jobs.size());
  for (const Job& job : workload.jobs) {
    tasks[static_cast<std::size_t>(job.id)].resize(job.num_tasks());
    remaining[static_cast<std::size_t>(job.id)] = job.num_tasks();
  }

  des::EventHandle deferral_wakeup;
  Time deferral_wakeup_at = kNoTime;

  // Forward declarations via std::function so the plan applier can
  // schedule completion events that re-enter nothing (completions do not
  // trigger rescheduling in MRCP-RM: the plan already extends beyond
  // them; only arrivals and deferral releases do).
  std::function<void(const Plan&)> apply_plan;
  std::function<void()> update_deferral_wakeup;

  auto on_task_end = [&](JobId job_id, int task_index) {
    const auto ji = static_cast<std::size_t>(job_id);
    TaskState& ts = tasks[ji][static_cast<std::size_t>(task_index)];
    MRCP_CHECK(ts.started);
    MRCP_CHECK(des.now() == ts.end);
    executed.push_back(
        ExecutedTask{job_id, task_index, ts.resource, ts.start, ts.end});
    MRCP_CHECK(remaining[ji] > 0);
    if (--remaining[ji] == 0) {
      finish_job(metrics.records[ji], des.now());
    }
  };

  apply_plan = [&](const Plan& plan) {
    for (const PlannedTask& pt : plan.tasks) {
      const auto ji = static_cast<std::size_t>(pt.job);
      TaskState& ts = tasks[ji][static_cast<std::size_t>(pt.task_index)];
      if (ts.started) {
        // Running (or finished-this-tick) tasks must keep their placement.
        MRCP_CHECK_MSG(ts.resource == pt.resource && ts.start == pt.start &&
                           ts.end == pt.end,
                       "RM moved a started task");
        continue;
      }
      if (pt.started) {
        // Starts now (or started at this very tick): commit it.
        ts.started = true;
        ts.resource = pt.resource;
        ts.start = pt.start;
        ts.end = pt.end;
        if (ts.end_event.pending()) des.cancel(ts.end_event);
        const JobId job_id = pt.job;
        const int task_index = pt.task_index;
        ts.end_event = des.schedule_at(
            pt.end, [&, job_id, task_index] { on_task_end(job_id, task_index); });
        continue;
      }
      // Future task: (re)schedule its completion event; a later replan may
      // cancel it again.
      if (ts.end_event.pending()) des.cancel(ts.end_event);
      ts.resource = pt.resource;
      ts.start = pt.start;
      ts.end = pt.end;
      const JobId job_id = pt.job;
      const int task_index = pt.task_index;
      ts.end_event = des.schedule_at(pt.end, [&, job_id, task_index] {
        TaskState& inner = tasks[static_cast<std::size_t>(job_id)]
                                [static_cast<std::size_t>(task_index)];
        // The task implicitly started at inner.start; mark and complete.
        inner.started = true;
        on_task_end(job_id, task_index);
      });
    }
    // Mark plan-started tasks that begin before their end event fires:
    // handled lazily above; nothing else to do.
  };

  update_deferral_wakeup = [&]() {
    const Time next = rm.next_deferred_release();
    if (next == deferral_wakeup_at) return;
    if (deferral_wakeup.pending()) des.cancel(deferral_wakeup);
    deferral_wakeup_at = next;
    if (next == kNoTime) return;
    const Time at = std::max(next, des.now());
    deferral_wakeup = des.schedule_at(at, [&] {
      deferral_wakeup_at = kNoTime;
      const Plan& plan = rm.reschedule(des.now());
      apply_plan(plan);
      update_deferral_wakeup();
    });
  };

  for (const Job& job : workload.jobs) {
    des.schedule_at(job.arrival_time, [&, &job = job] {
      rm.submit(job, des.now());
      const Plan& plan = rm.reschedule(des.now());
      apply_plan(plan);
      update_deferral_wakeup();
    });
  }

  des.run();

  // Every job must have completed.
  for (std::size_t ji = 0; ji < remaining.size(); ++ji) {
    MRCP_CHECK_MSG(remaining[ji] == 0, "job did not finish");
  }
  // Note: rm.stats().jobs_completed can lag the simulation — the RM only
  // sweeps completions when reschedule() runs, and the final tasks finish
  // after the last arrival-triggered invocation.
  const MrcpStats& rm_stats = rm.stats();
  metrics.total_sched_seconds = rm_stats.total_sched_seconds;
  metrics.rm_invocations = rm_stats.invocations;
  metrics.max_live_tasks = rm_stats.max_live_tasks;

  if (options.validate_execution) {
    const std::string err = validate_execution(workload, executed);
    MRCP_CHECK_MSG(err.empty(), err.c_str());
  }
  metrics.executed = std::move(executed);
  return metrics;
}

SimMetrics simulate_minedf(const Workload& workload,
                           const baseline::MinEdfConfig& config,
                           const SimOptions& options) {
  MRCP_CHECK_MSG(validate_workload(workload).empty(), "invalid workload");
  // MinEDF-WC is a two-phase slot scheduler; it has no notion of
  // user-specified workflow DAGs (only MRCP-RM's CP model does).
  for (const Job& j : workload.jobs) {
    MRCP_CHECK_MSG(j.precedences.empty(),
                   "MinEDF-WC does not support workflow precedences");
  }

  des::Simulation des;
  SimMetrics metrics;
  metrics.records = make_records(workload);
  std::vector<ExecutedTask> executed;
  std::vector<std::size_t> remaining(workload.jobs.size());
  for (const Job& job : workload.jobs) {
    remaining[static_cast<std::size_t>(job.id)] = job.num_tasks();
  }

  baseline::MinEdfWcScheduler* sched_ptr = nullptr;
  des::EventHandle eligibility_wakeup;
  Time eligibility_at = kNoTime;

  // Resource identity does not influence MinEDF-WC decisions (slots are
  // interchangeable), but executed intervals are mapped onto real slots
  // so validate_execution stays meaningful for the baseline too.
  struct SlotState {
    ResourceId resource;
    Time busy_until = 0;
  };
  std::vector<SlotState> map_slots;
  std::vector<SlotState> reduce_slots;
  for (const Resource& r : workload.cluster.resources()) {
    for (int s = 0; s < r.map_capacity; ++s) map_slots.push_back({r.id, 0});
    for (int s = 0; s < r.reduce_capacity; ++s) reduce_slots.push_back({r.id, 0});
  }
  auto claim_slot = [](std::vector<SlotState>& slots, Time start,
                       Time end) -> ResourceId {
    for (SlotState& s : slots) {
      if (s.busy_until <= start) {
        s.busy_until = end;
        return s.resource;
      }
    }
    MRCP_CHECK_MSG(false, "MinEDF-WC launched beyond total capacity");
    return kNoResource;
  };

  auto update_eligibility_wakeup = [&]() {
    if (sched_ptr == nullptr) return;
    const Time next = sched_ptr->next_eligible_time(des.now());
    if (next == eligibility_at) return;
    if (eligibility_wakeup.pending()) des.cancel(eligibility_wakeup);
    eligibility_at = next;
    if (next == kNoTime) return;
    eligibility_wakeup = des.schedule_at(std::max(next, des.now()), [&] {
      eligibility_at = kNoTime;
      sched_ptr->wake(des.now());
    });
  };

  baseline::MinEdfWcScheduler sched(
      workload.cluster,
      [&](JobId job_id, int task_index, Time start, Time end) {
        const Job& job = workload.jobs[static_cast<std::size_t>(job_id)];
        const Task& task = job.task(static_cast<std::size_t>(task_index));
        const ResourceId res =
            claim_slot(task.type == TaskType::kMap ? map_slots : reduce_slots,
                       start, end);
        des.schedule_at(end, [&, job_id, task_index, res, start, end] {
          executed.push_back(ExecutedTask{job_id, task_index, res, start, end});
          const auto ji = static_cast<std::size_t>(job_id);
          MRCP_CHECK(remaining[ji] > 0);
          if (--remaining[ji] == 0) finish_job(metrics.records[ji], des.now());
          sched_ptr->on_task_finished(job_id, task_index, des.now());
          update_eligibility_wakeup();
        });
      },
      config);
  sched_ptr = &sched;

  for (const Job& job : workload.jobs) {
    des.schedule_at(job.arrival_time, [&, &job = job] {
      sched.submit(job, des.now());
      update_eligibility_wakeup();
    });
  }

  des.run();

  for (std::size_t ji = 0; ji < remaining.size(); ++ji) {
    MRCP_CHECK_MSG(remaining[ji] == 0, "job did not finish under MinEDF-WC");
  }
  metrics.total_sched_seconds = sched.stats().total_sched_seconds;
  metrics.rm_invocations = sched.stats().dispatches;

  if (options.validate_execution) {
    const std::string err = validate_execution(workload, executed);
    MRCP_CHECK_MSG(err.empty(), err.c_str());
  }
  metrics.executed = std::move(executed);
  return metrics;
}

}  // namespace mrcp::sim
