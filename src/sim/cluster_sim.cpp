#include "sim/cluster_sim.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "baseline/minedf_wc.h"
#include "common/check.h"
#include "des/simulation.h"
#include "sim/sim_internal.h"

namespace mrcp::sim {

namespace internal {

std::vector<JobRecord> make_records(const Workload& workload) {
  std::vector<JobRecord> records(workload.jobs.size());
  for (const Job& job : workload.jobs) {
    // validate_workload guarantees dense in-order ids; keep the bound
    // explicit so a caller bypassing validation fails loudly, not UB.
    MRCP_CHECK_MSG(
        job.id >= 0 && static_cast<std::size_t>(job.id) < records.size(),
        "job id out of range (ids must be dense)");
    JobRecord& r = records[static_cast<std::size_t>(job.id)];
    r.id = job.id;
    r.arrival = job.arrival_time;
    r.earliest_start = job.earliest_start;
    r.deadline = job.deadline;
  }
  return records;
}

}  // namespace internal

namespace {

using internal::make_records;

bool cluster_constrains_links(const Cluster& cluster) {
  for (const Resource& r : cluster.resources()) {
    if (r.net_capacity > 0) return true;
  }
  return false;
}

}  // namespace

std::string validate_execution(const Workload& workload,
                               const std::vector<ExecutedTask>& executed,
                               const std::vector<ExecutedTask>& killed,
                               const std::vector<DownInterval>& downtime) {
  // Every task of every job executed successfully exactly once (killed
  // attempts are extra occupancy on top, never a completion).
  std::size_t expected = 0;
  for (const Job& j : workload.jobs) expected += j.num_tasks();
  if (executed.size() != expected) {
    std::ostringstream os;
    os << "executed " << executed.size() << " tasks, expected " << expected;
    return os.str();
  }
  // When any resource constrains its links, a net-demanding task *must*
  // be swept against its resource's link capacity — a zero-capacity
  // resource then has no room for it (rather than silently skipping).
  const bool links_constrained = cluster_constrains_links(workload.cluster);
  std::map<std::pair<JobId, int>, const ExecutedTask*> seen;
  std::map<std::pair<ResourceId, int>, std::map<Time, int>> deltas;
  std::map<JobId, Time> latest_map_end;

  for (const ExecutedTask& et : executed) {
    std::ostringstream where;
    where << "job " << et.job << " task " << et.task_index << ": ";
    if (et.job < 0 || static_cast<std::size_t>(et.job) >= workload.jobs.size()) {
      return where.str() + "unknown job";
    }
    const Job& job = workload.jobs[static_cast<std::size_t>(et.job)];
    if (et.task_index < 0 ||
        static_cast<std::size_t>(et.task_index) >= job.num_tasks()) {
      return where.str() + "bad task index";
    }
    if (!seen.emplace(std::make_pair(et.job, et.task_index), &et).second) {
      return where.str() + "executed twice";
    }
    const Task& task = job.task(static_cast<std::size_t>(et.task_index));
    if (et.resource < 0 || et.resource >= workload.cluster.size()) {
      return where.str() + "bad resource";
    }
    const Resource& host = workload.cluster.resource(et.resource);
    // A task's observed duration is its exec time scaled by the host's
    // speed factor — a fast machine must finish early, a slow one late.
    if (et.end - et.start != host.scaled_duration(task.exec_time)) {
      return where.str() + "wrong duration for the host's speed";
    }
    if (et.start < job.earliest_start) {
      return where.str() + "started before s_j";
    }
    if (!task.candidates.empty() &&
        std::find(task.candidates.begin(), task.candidates.end(),
                  et.resource) == task.candidates.end()) {
      return where.str() + "ran outside its candidate resources";
    }
    if (!task.racks.empty() &&
        std::find(task.racks.begin(), task.racks.end(), host.rack) ==
            task.racks.end()) {
      return where.str() + "ran outside its eligible racks";
    }
    deltas[{et.resource, static_cast<int>(task.type)}][et.start] += task.res_req;
    deltas[{et.resource, static_cast<int>(task.type)}][et.end] -= task.res_req;
    if (task.net_demand > 0 && links_constrained) {
      deltas[{et.resource, 2}][et.start] += task.net_demand;
      deltas[{et.resource, 2}][et.end] -= task.net_demand;
    }
    if (task.type == TaskType::kMap) {
      auto [it, inserted] = latest_map_end.try_emplace(et.job, et.end);
      if (!inserted) it->second = std::max(it->second, et.end);
    }
  }

  // Downtime intervals, grouped per resource.
  std::vector<std::vector<const DownInterval*>> down_by_res(
      static_cast<std::size_t>(workload.cluster.size()));
  for (const DownInterval& d : downtime) {
    if (d.resource < 0 || d.resource >= workload.cluster.size()) {
      return "downtime interval with bad resource";
    }
    if (d.end != kNoTime && d.end <= d.start) {
      return "downtime interval with non-positive length";
    }
    down_by_res[static_cast<std::size_t>(d.resource)].push_back(&d);
  }

  // Killed attempts: partial occupancy ending exactly at a failure of
  // their resource. They join the capacity sweeps — a slot lost mid-task
  // was still a slot held.
  for (const ExecutedTask& k : killed) {
    std::ostringstream where;
    where << "killed attempt job " << k.job << " task " << k.task_index << ": ";
    if (k.job < 0 || static_cast<std::size_t>(k.job) >= workload.jobs.size()) {
      return where.str() + "unknown job";
    }
    const Job& job = workload.jobs[static_cast<std::size_t>(k.job)];
    if (k.task_index < 0 ||
        static_cast<std::size_t>(k.task_index) >= job.num_tasks()) {
      return where.str() + "bad task index";
    }
    if (k.resource < 0 || k.resource >= workload.cluster.size()) {
      return where.str() + "bad resource";
    }
    const Task& task = job.task(static_cast<std::size_t>(k.task_index));
    const Resource& k_host = workload.cluster.resource(k.resource);
    if (k.end < k.start) return where.str() + "negative attempt length";
    if (k.end - k.start >= k_host.scaled_duration(task.exec_time)) {
      return where.str() + "attempt ran to completion yet counts as killed";
    }
    if (!task.candidates.empty() &&
        std::find(task.candidates.begin(), task.candidates.end(),
                  k.resource) == task.candidates.end()) {
      return where.str() + "attempt ran outside its candidate resources";
    }
    if (!task.racks.empty() &&
        std::find(task.racks.begin(), task.racks.end(), k_host.rack) ==
            task.racks.end()) {
      return where.str() + "attempt ran outside its eligible racks";
    }
    bool at_failure = false;
    for (const DownInterval* d : down_by_res[static_cast<std::size_t>(k.resource)]) {
      at_failure = at_failure || d->start == k.end;
    }
    if (!at_failure) {
      return where.str() + "kill time matches no failure of its resource";
    }
    deltas[{k.resource, static_cast<int>(task.type)}][k.start] += task.res_req;
    deltas[{k.resource, static_cast<int>(task.type)}][k.end] -= task.res_req;
    if (task.net_demand > 0 && links_constrained) {
      deltas[{k.resource, 2}][k.start] += task.net_demand;
      deltas[{k.resource, 2}][k.end] -= task.net_demand;
    }
  }

  // No successful interval may overlap its resource's downtime.
  for (const ExecutedTask& et : executed) {
    for (const DownInterval* d : down_by_res[static_cast<std::size_t>(et.resource)]) {
      const Time down_end = d->end == kNoTime ? kMaxTime : d->end;
      if (et.start < down_end && d->start < et.end) {
        std::ostringstream os;
        os << "job " << et.job << " task " << et.task_index
           << " ran during downtime of resource " << et.resource;
        return os.str();
      }
    }
  }

  // Precedence: reduces strictly after all maps of the job.
  for (const ExecutedTask& et : executed) {
    const Job& job = workload.jobs[static_cast<std::size_t>(et.job)];
    const Task& task = job.task(static_cast<std::size_t>(et.task_index));
    if (task.type == TaskType::kReduce) {
      auto it = latest_map_end.find(et.job);
      if (it != latest_map_end.end() && et.start < it->second) {
        return "job " + std::to_string(et.job) +
               ": reduce started before all maps finished";
      }
    }
  }
  // Workflow precedences (user-specified DAG edges).
  {
    std::map<std::pair<JobId, int>, const ExecutedTask*> by_key;
    for (const ExecutedTask& et : executed) {
      by_key[{et.job, et.task_index}] = &et;
    }
    for (const Job& job : workload.jobs) {
      for (const auto& [before, after] : job.precedences) {
        const ExecutedTask* b = by_key.at({job.id, before});
        const ExecutedTask* a = by_key.at({job.id, after});
        if (a->start < b->end) {
          return "job " + std::to_string(job.id) +
                 ": workflow precedence violated in execution";
        }
      }
    }
  }
  // Anti-affinity: a job's group members must *complete* on pairwise
  // distinct resources. Killed attempts are exempt — a kill releases the
  // host, and the re-run may legally land where a failed sibling attempt
  // once sat.
  {
    std::map<std::tuple<JobId, int, ResourceId>, const ExecutedTask*> holders;
    for (const ExecutedTask& et : executed) {
      const Job& job = workload.jobs[static_cast<std::size_t>(et.job)];
      const Task& task = job.task(static_cast<std::size_t>(et.task_index));
      if (task.affinity_group < 0) continue;
      const auto [it, inserted] = holders.try_emplace(
          std::make_tuple(et.job, task.affinity_group, et.resource), &et);
      if (!inserted) {
        return "job " + std::to_string(et.job) + " task " +
               std::to_string(et.task_index) + ": shares resource " +
               std::to_string(et.resource) + " with task " +
               std::to_string(it->second->task_index) +
               " of the same anti-affinity group";
      }
    }
  }
  // Capacity sweeps (map slots, reduce slots, network links).
  for (const auto& [key, delta] : deltas) {
    const Resource& r = workload.cluster.resource(key.first);
    const int cap = key.second == 2
                        ? r.net_capacity
                        : r.capacity(static_cast<TaskType>(key.second));
    int usage = 0;
    for (const auto& [time, d] : delta) {
      usage += d;
      if (usage > cap) {
        std::ostringstream os;
        os << "resource " << key.first << " "
           << (key.second == 2   ? "net"
               : key.second == 0 ? "map"
                                 : "reduce")
           << " over capacity at t=" << time;
        return os.str();
      }
    }
  }
  return "";
}

std::string validate_execution(const Workload& workload,
                               const std::vector<ExecutedTask>& executed) {
  return validate_execution(workload, executed, {}, {});
}

SimMetrics simulate_minedf(const Workload& workload,
                           const baseline::MinEdfConfig& config,
                           const SimOptions& options) {
  MRCP_CHECK_MSG(validate_workload(workload).empty(), "invalid workload");
  // MinEDF-WC is a two-phase slot scheduler; it has no notion of
  // user-specified workflow DAGs (only MRCP-RM's CP model does).
  for (const Job& j : workload.jobs) {
    MRCP_CHECK_MSG(j.precedences.empty(),
                   "MinEDF-WC does not support workflow precedences");
  }
  const FaultConfig& faults = options.faults;
  {
    const std::string fault_err = faults.validate();
    MRCP_CHECK_MSG(fault_err.empty(), fault_err.c_str());
  }

  SimMetrics metrics;
  Workload straggled;
  const Workload* active_workload = &workload;
  if (faults.stragglers_enabled()) {
    straggled = workload;
    metrics.failure.straggler_tasks = apply_stragglers(straggled, faults);
    active_workload = &straggled;
  }
  const Workload& w = *active_workload;

  des::Simulation des;
  FaultInjector injector(w.cluster.size(), faults, cluster_racks(w.cluster));
  metrics.records = make_records(w);
  std::vector<ExecutedTask> executed;
  std::vector<std::size_t> remaining(w.jobs.size());
  for (const Job& job : w.jobs) {
    remaining[static_cast<std::size_t>(job.id)] = job.num_tasks();
  }
  std::size_t jobs_left = w.jobs.size();

  baseline::MinEdfWcScheduler* sched_ptr = nullptr;
  des::EventHandle eligibility_wakeup;
  Time eligibility_at = kNoTime;

  // Resource identity does not influence MinEDF-WC decisions (slots are
  // interchangeable), but executed intervals are mapped onto real slots
  // so validate_execution stays meaningful for the baseline too.
  struct SlotState {
    ResourceId resource;
    Time busy_until;
    bool down = false;
  };
  std::vector<SlotState> map_slots;
  std::vector<SlotState> reduce_slots;
  for (const Resource& r : w.cluster.resources()) {
    for (int s = 0; s < r.map_capacity; ++s) map_slots.push_back({r.id, Time{0}, false});
    for (int s = 0; s < r.reduce_capacity; ++s) {
      reduce_slots.push_back({r.id, Time{0}, false});
    }
  }
  // Anti-affinity bookkeeping: resources currently held (running) or
  // permanently burned (completed) by a (job, group)'s members. Kills
  // release their entry; completions never do.
  std::map<std::pair<JobId, int>, std::vector<ResourceId>> group_taken;

  // Running tasks with the slot they occupy, for failure kills.
  struct RunningTask {
    bool is_map = false;
    std::size_t slot = 0;
    Time start = kNoTime;
    Time end = kNoTime;
    des::EventHandle end_event;
  };
  std::map<std::pair<JobId, int>, RunningTask> running;

  auto update_eligibility_wakeup = [&]() {
    if (sched_ptr == nullptr) return;
    const Time next = sched_ptr->next_eligible_time(des.now());
    if (next == eligibility_at) return;
    if (eligibility_wakeup.pending()) des.cancel(eligibility_wakeup);
    eligibility_at = next;
    if (next == kNoTime) return;
    eligibility_wakeup = des.schedule_at(std::max(next, des.now()), [&] {
      eligibility_at = kNoTime;
      sched_ptr->wake(des.now());
    });
  };

  baseline::MinEdfWcScheduler sched(
      w.cluster,
      [&](JobId job_id, int task_index, Time start, Time base_end) -> Time {
        (void)base_end;
        const Job& job = w.jobs[static_cast<std::size_t>(job_id)];
        const Task& task = job.task(static_cast<std::size_t>(task_index));
        const bool is_map = task.type == TaskType::kMap;
        auto& slots = is_map ? map_slots : reduce_slots;
        // Eligible slot search: placement constraints first, then prefer
        // the fastest host, then the lowest slot index — which reduces to
        // the plain first-free-slot scan on a homogeneous, unconstrained
        // cluster.
        std::vector<ResourceId>* taken = nullptr;
        if (task.affinity_group >= 0) {
          taken = &group_taken[{job_id, task.affinity_group}];
        }
        auto eligible = [&](ResourceId r) {
          if (!task.candidates.empty() &&
              std::find(task.candidates.begin(), task.candidates.end(), r) ==
                  task.candidates.end()) {
            return false;
          }
          if (!task.racks.empty()) {
            const int rack = w.cluster.resource(r).rack;
            if (std::find(task.racks.begin(), task.racks.end(), rack) ==
                task.racks.end()) {
              return false;
            }
          }
          return taken == nullptr ||
                 std::find(taken->begin(), taken->end(), r) == taken->end();
        };
        std::size_t slot = slots.size();
        int best_speed = -1;
        for (std::size_t i = 0; i < slots.size(); ++i) {
          const SlotState& s = slots[i];
          if (s.down || s.busy_until > start) continue;
          if (!eligible(s.resource)) continue;
          const int speed = w.cluster.resource(s.resource).speed_permille;
          if (speed > best_speed) {
            best_speed = speed;
            slot = i;
          }
        }
        if (slot == slots.size()) {
          // The free-slot counters guarantee *some* slot is free, so only
          // a placement-constrained task may be refused here.
          MRCP_CHECK_MSG(task.placement_constrained(),
                         "MinEDF-WC launched beyond available capacity");
          return kNoTime;
        }
        const ResourceId res = slots[slot].resource;
        const Time end =
            start + w.cluster.resource(res).scaled_duration(task.exec_time);
        slots[slot].busy_until = end;
        if (taken != nullptr) taken->push_back(res);
        RunningTask rt{is_map, slot, start, end, {}};
        rt.end_event =
            des.schedule_at(end, [&, job_id, task_index, res, start, end] {
              running.erase({job_id, task_index});
              executed.push_back(
                  ExecutedTask{job_id, task_index, res, start, end});
              const auto ji = static_cast<std::size_t>(job_id);
              MRCP_CHECK(remaining[ji] > 0);
              if (--remaining[ji] == 0) {
                JobRecord& record = metrics.records[ji];
                finish_job_record(record, des.now());
                if (record.late && record.failure_affected) {
                  ++metrics.failure.jobs_late_failure_affected;
                }
                MRCP_CHECK(jobs_left > 0);
                if (--jobs_left == 0) injector.stop(des);
              }
              sched_ptr->on_task_finished(job_id, task_index, des.now());
              update_eligibility_wakeup();
            });
        running.emplace(std::make_pair(job_id, task_index), std::move(rt));
        return end;
      },
      config);
  sched_ptr = &sched;

  auto on_resource_down = [&](ResourceId r, Time t) {
    for (SlotState& s : map_slots) {
      if (s.resource == r) s.down = true;
    }
    for (SlotState& s : reduce_slots) {
      if (s.resource == r) s.down = true;
    }
    const Resource& res = w.cluster.resource(r);
    sched.handle_resource_down(res.map_capacity, res.reduce_capacity);
    // Kill the attempts running on r; a task that ends exactly at t is a
    // normal completion (its end event fires later this tick).
    for (auto it = running.begin(); it != running.end();) {
      RunningTask& rt = it->second;
      auto& slots = rt.is_map ? map_slots : reduce_slots;
      if (slots[rt.slot].resource != r || rt.end <= t) {
        ++it;
        continue;
      }
      des.cancel(rt.end_event);
      slots[rt.slot].busy_until = t;
      const auto [job_id, task_index] = it->first;
      metrics.killed.push_back(ExecutedTask{job_id, task_index, r, rt.start, t});
      ++metrics.failure.tasks_killed;
      metrics.failure.wasted_ticks += t - rt.start;
      metrics.records[static_cast<std::size_t>(job_id)].failure_affected = true;
      sched.handle_task_killed(job_id, task_index, rt.end, t);
      // A killed attempt releases its anti-affinity hold: the re-run may
      // land anywhere its live siblings do not sit.
      const Task& killed_task = w.jobs[static_cast<std::size_t>(job_id)].task(
          static_cast<std::size_t>(task_index));
      if (killed_task.affinity_group >= 0) {
        auto& taken = group_taken[{job_id, killed_task.affinity_group}];
        const auto pos = std::find(taken.begin(), taken.end(), r);
        MRCP_CHECK(pos != taken.end());
        taken.erase(pos);
      }
      it = running.erase(it);
    }
    sched.wake(t);
    update_eligibility_wakeup();
  };
  auto on_resource_up = [&](ResourceId r, Time t) {
    for (SlotState& s : map_slots) {
      if (s.resource == r) s.down = false;
    }
    for (SlotState& s : reduce_slots) {
      if (s.resource == r) s.down = false;
    }
    const Resource& res = w.cluster.resource(r);
    sched.handle_resource_up(res.map_capacity, res.reduce_capacity);
    sched.wake(t);
    update_eligibility_wakeup();
  };
  injector.start(des, on_resource_down, on_resource_up);

  for (const Job& job : w.jobs) {
    des.schedule_at(job.arrival_time, [&, &job = job] {
      sched.submit(job, des.now());
      update_eligibility_wakeup();
    });
  }

  des.run();

  for (std::size_t ji = 0; ji < remaining.size(); ++ji) {
    MRCP_CHECK_MSG(remaining[ji] == 0, "job did not finish under MinEDF-WC");
  }
  metrics.total_sched_seconds = sched.stats().total_sched_seconds;
  metrics.rm_invocations = sched.stats().dispatches;
  metrics.downtime = injector.downtime();
  metrics.failure.resource_failures = injector.failures();
  metrics.failure.resource_repairs = injector.repairs();
  metrics.failure.rack_bursts = injector.rack_bursts();

  if (options.validate_execution) {
    const std::string err =
        validate_execution(w, executed, metrics.killed, metrics.downtime);
    MRCP_CHECK_MSG(err.empty(), err.c_str());
  }
  metrics.executed = std::move(executed);
  return metrics;
}

}  // namespace mrcp::sim
