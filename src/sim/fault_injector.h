// Seeded fault injection for the cluster simulation.
//
// Clouds fail; the paper's evaluation assumes they do not. This layer
// closes that gap with two orthogonal fault classes:
//
//   * Resource failures — each resource alternates up/down phases with
//     exponentially distributed lengths (mean MTBF up, mean MTTR down),
//     the classic machine-availability model. On a failure the driver
//     kills the resource's running tasks and notifies the resource
//     manager; on a repair the resource rejoins the cluster.
//
//   * Stragglers — each task is independently slowed down by a fixed
//     factor with probability `straggler_prob` (the LATE/Mantri regime).
//     Stragglers are applied as an up-front workload transform so both
//     resource managers plan against the same (slowed) ground truth.
//
//   * Rack bursts — correlated failures (docs/fault_model.md): each rack
//     owns an exponential burst clock (mean rack_mtbf_s); a burst downs
//     every currently-up member of the rack at once (a shared switch/PDU
//     dying), respecting max_concurrent_down per member. Each downed
//     member draws an *independent* repair with mean rack_mttr_s from its
//     own stream — racks recover machine by machine, as real ones do.
//
// Determinism: every resource owns its own RandomStream derived from
// (seed, resource id), and failure/repair draws happen only inside the
// injector's own event chain — never in response to scheduling activity.
// The injected fault trace is therefore a pure function of
// (seed, mtbf, mttr, cluster size): identical across resource-manager
// policies, repeated runs, and solver thread counts. Stragglers are a
// pure hash of (seed, job id, task index) — no stream state at all.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "des/simulation.h"
#include "mapreduce/workload.h"
#include "sim/metrics.h"

namespace mrcp::sim {

struct FaultConfig {
  /// Mean time between failures per resource, seconds. 0 disables
  /// resource failures entirely.
  double mtbf_s = 0.0;
  /// Mean time to repair a failed resource, seconds.
  double mttr_s = 60.0;
  /// Probability that a task is a straggler. 0 disables stragglers.
  double straggler_prob = 0.0;
  /// Execution-time multiplier applied to straggler tasks (>= 1).
  double straggler_factor = 1.0;
  /// Seed of the fault trace; independent of the workload seed.
  std::uint64_t seed = 1;
  /// At most this many resources down simultaneously; -1 means
  /// `cluster size - 1` (the cluster never fully disappears, which
  /// would leave the resource managers with no feasible placement).
  int max_concurrent_down = -1;
  /// Mean time between correlated *rack* bursts, seconds, per rack. 0
  /// disables rack bursts.
  double rack_mtbf_s = 0.0;
  /// Mean time to repair a member downed by a rack burst, seconds (each
  /// member draws independently).
  double rack_mttr_s = 60.0;

  bool failures_enabled() const { return mtbf_s > 0.0; }
  bool rack_failures_enabled() const { return rack_mtbf_s > 0.0; }
  bool stragglers_enabled() const {
    return straggler_prob > 0.0 && straggler_factor != 1.0;
  }
  bool enabled() const {
    return failures_enabled() || rack_failures_enabled() ||
           stragglers_enabled();
  }

  /// Empty string when consistent.
  std::string validate() const;
};

/// Schedules resource down/up events into a DES run. The driver owns the
/// callbacks; the injector owns the up/down state and the downtime log.
class FaultInjector {
 public:
  /// Called with (resource, now) after the injector's own bookkeeping.
  using TransitionFn = std::function<void(ResourceId, Time)>;

  /// `racks[r]` is resource r's rack id; empty places every resource in
  /// rack 0. Rack ids drive the correlated-burst clocks (one per
  /// distinct rack, streams keyed by sorted rack order).
  FaultInjector(int num_resources, const FaultConfig& config,
                std::vector<int> racks = {});

  /// Schedule the first failure of every resource. No-op when resource
  /// failures are disabled.
  void start(des::Simulation& des, TransitionFn on_down, TransitionFn on_up);

  /// Cancel all pending failure/repair events (call when the workload
  /// has drained, so the event list can empty). Open downtime intervals
  /// stay open (end == kNoTime).
  void stop(des::Simulation& des);

  bool is_down(ResourceId r) const {
    return down_[static_cast<std::size_t>(r)] != 0;
  }
  int down_count() const { return down_count_; }

  /// All downtime intervals recorded so far, in failure order. An
  /// interval with end == kNoTime was still open when stop() ran.
  const std::vector<DownInterval>& downtime() const { return downtime_; }

  std::uint64_t failures() const { return failures_; }
  std::uint64_t repairs() const { return repairs_; }
  /// Failures suppressed by the max_concurrent_down cap.
  std::uint64_t suppressed_failures() const { return suppressed_; }
  /// Correlated rack bursts fired (each may down several members).
  std::uint64_t rack_bursts() const { return rack_bursts_; }

  // ---- Durability (docs/crash_recovery.md) ----

  /// One captured not-yet-fired transition. `seq` is the event's original
  /// DES sequence number: the resume path re-schedules every captured
  /// event (of every category) in ascending original-seq order, which
  /// reproduces all same-tick tie-breaks of the uninterrupted run.
  struct PendingTransition {
    ResourceId resource = kNoResource;
    Time time;
    std::uint64_t seq = 0;
    bool repair = false;  ///< false = pending failure, true = pending repair
    /// >= 0: this is a rack-burst clock event for that rack id
    /// (`resource`/`repair` are meaningless then).
    int rack = -1;
  };

  /// Serialize the full injector state: per-resource RNG engine states,
  /// up/down flags, the downtime log, counters, and every pending
  /// transition's (time, seq, kind).
  std::string encode_state() const;

  /// Restore a capture made by encode_state(). Pending transitions are
  /// *not* rescheduled here — the driver merges them with the other
  /// captured event categories and re-schedules in global seq order via
  /// schedule_transition(). False (with *error set) on corruption or a
  /// resource-count mismatch.
  bool restore_state(std::string_view state, std::string* error);

  /// Transitions captured by the last restore_state(), ascending seq.
  const std::vector<PendingTransition>& pending_transitions() const {
    return restored_pending_;
  }

  /// Install the driver callbacks on a restored injector — what start()
  /// does, minus drawing fresh first failures.
  void resume(TransitionFn on_down, TransitionFn on_up);

  /// Re-schedule one captured transition into a fresh DES.
  void schedule_transition(des::Simulation& des, const PendingTransition& t);

 private:
  void schedule_failure(des::Simulation& des, ResourceId r);
  void on_failure(des::Simulation& des, ResourceId r);
  void on_repair(des::Simulation& des, ResourceId r);
  Time draw_ticks(ResourceId r, double mean_s);
  void schedule_rack_failure(des::Simulation& des, std::size_t rack_index);
  void on_rack_failure(des::Simulation& des, std::size_t rack_index);
  /// Fail one up resource at `now` with the given repair mean — the body
  /// shared by individual failures and rack-burst members.
  void fail_resource(des::Simulation& des, ResourceId r, Time now,
                     double repair_mean_s);

  FaultConfig config_;
  int cap_;
  std::vector<RandomStream> streams_;      ///< one per resource
  std::vector<des::EventHandle> pending_;  ///< next transition per resource
  std::vector<std::uint8_t> down_;
  std::vector<std::size_t> open_;  ///< downtime_ index of the open interval
  std::vector<DownInterval> downtime_;
  std::vector<int> rack_of_;                    ///< per resource
  std::vector<int> rack_ids_;                   ///< sorted distinct
  std::vector<RandomStream> rack_streams_;      ///< parallel to rack_ids_
  std::vector<des::EventHandle> rack_pending_;  ///< next burst per rack
  int down_count_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t repairs_ = 0;
  std::uint64_t suppressed_ = 0;
  std::uint64_t rack_bursts_ = 0;
  TransitionFn on_down_;
  TransitionFn on_up_;
  std::vector<PendingTransition> restored_pending_;  ///< from restore_state
};

/// Convenience for the FaultInjector constructor: the per-resource rack
/// ids of a cluster, in resource-id order.
std::vector<int> cluster_racks(const Cluster& cluster);

/// Pure predicate: is (job, task_index) a straggler under `config`?
/// Stateless hash of (seed, job, task) — stable under any evaluation
/// order.
bool is_straggler(const FaultConfig& config, JobId job, int task_index);

/// Inflate the exec_time of every straggler task in place. Returns the
/// number of tasks slowed down. No-op (returns 0) when stragglers are
/// disabled.
std::size_t apply_stragglers(Workload& workload, const FaultConfig& config);

}  // namespace mrcp::sim
