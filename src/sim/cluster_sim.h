// Open-system cluster simulation drivers (paper §VI).
//
// Both drivers replay a Workload's Poisson arrival stream through the DES
// kernel against the same simulated cluster; they differ in the resource
// manager:
//
//   simulate_mrcp    — plan-based. Each arrival (and each §V.E deferral
//                      release) invokes MrcpRm::reschedule(); the driver
//                      executes the published plan, cancelling the
//                      pending completion events of any re-planned
//                      not-yet-started task. Scheduling takes zero
//                      simulated time (the paper runs MRCP-RM on its own
//                      CPU); its wall-clock cost is recorded as O.
//
//   simulate_minedf  — dynamic. Arrivals and task completions drive the
//                      MinEDF-WC dispatch loop directly.
//
// With validate_execution on, every executed task interval is checked
// after the run: per-resource per-phase capacity sweeps, map-before-
// reduce precedence, earliest start times, and exact durations. This is
// the simulation's ground truth — a resource manager bug cannot hide
// behind its own bookkeeping.
#pragma once

#include <cstdint>
#include <string>

#include "baseline/minedf_wc.h"
#include "core/mrcp_rm.h"
#include "mapreduce/workload.h"
#include "sim/fault_injector.h"
#include "sim/metrics.h"

namespace mrcp::sim {

/// Crash-tolerance knobs for simulate_mrcp (docs/crash_recovery.md).
/// Everything defaults to off: with an empty journal_prefix the driver
/// takes the exact pre-durability code path — no journal writes, no
/// snapshots, byte-identical output.
struct DurabilityOptions {
  /// Path prefix of the durability files: the write-ahead journal lives
  /// at "<prefix>.journal", snapshots at "<prefix>.snap". Empty disables
  /// the whole durability layer.
  std::string journal_prefix;
  /// Capture a full world snapshot whenever the journal's total record
  /// count crosses a multiple of this. 0 = journal only; recovery then
  /// cold-restores by re-running the entire journal from scratch.
  std::uint64_t snapshot_every = 0;
  /// Resume from the on-disk snapshot + journal left behind by a
  /// previous (crashed) run instead of starting fresh.
  bool restore = false;
  /// Crash-injection hook (the recovery harness): persist exactly this
  /// many journal records, silently drop every later write — what a
  /// process death between two appends leaves on disk — and abandon the
  /// run at the next event boundary (SimMetrics::crash_stopped). 0 = off.
  std::uint64_t crash_after_records = 0;

  bool enabled() const { return !journal_prefix.empty(); }
  std::string journal_path() const { return journal_prefix + ".journal"; }
  std::string snapshot_path() const { return journal_prefix + ".snap"; }
};

struct SimOptions {
  bool validate_execution = true;
  /// Also re-validate every published plan inside the RM (slower).
  bool validate_plans = false;
  /// Fault injection (resource failures, stragglers). Defaults to all
  /// knobs off, in which case both drivers behave bit-identically to a
  /// fault-free build. Both drivers see the same fault trace for a given
  /// config, so the policies are compared under identical failures.
  FaultConfig faults;
  /// Write-ahead journal + snapshots (simulate_mrcp only; off by
  /// default).
  DurabilityOptions durability;
};

SimMetrics simulate_mrcp(const Workload& workload, const MrcpConfig& config,
                         const SimOptions& options = {});

SimMetrics simulate_minedf(const Workload& workload,
                           const baseline::MinEdfConfig& config = {},
                           const SimOptions& options = {});

/// Shared validation helper (exposed for tests): checks executed
/// intervals against the workload. Empty string when consistent.
std::string validate_execution(const Workload& workload,
                               const std::vector<ExecutedTask>& executed);

/// Fault-aware variant: killed attempts join the capacity sweeps (they
/// held slots until their kill time, which must coincide with a failure
/// of their resource), and no successful interval may overlap its
/// resource's downtime.
std::string validate_execution(const Workload& workload,
                               const std::vector<ExecutedTask>& executed,
                               const std::vector<ExecutedTask>& killed,
                               const std::vector<DownInterval>& downtime);

}  // namespace mrcp::sim
