#include "sim/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/io/codec.h"

namespace mrcp::sim {

namespace {
constexpr std::size_t kNoOpenInterval = static_cast<std::size_t>(-1);
}  // namespace

std::string FaultConfig::validate() const {
  if (mtbf_s < 0.0) return "mtbf_s must be >= 0";
  if (failures_enabled() && mttr_s <= 0.0) {
    return "mttr_s must be > 0 when failures are enabled";
  }
  if (straggler_prob < 0.0 || straggler_prob > 1.0) {
    return "straggler_prob must be in [0, 1]";
  }
  if (straggler_prob > 0.0 && straggler_factor < 1.0) {
    return "straggler_factor must be >= 1";
  }
  if (max_concurrent_down < -1) return "max_concurrent_down must be >= -1";
  if (rack_mtbf_s < 0.0) return "rack_mtbf_s must be >= 0";
  if (rack_failures_enabled() && rack_mttr_s <= 0.0) {
    return "rack_mttr_s must be > 0 when rack bursts are enabled";
  }
  return "";
}

FaultInjector::FaultInjector(int num_resources, const FaultConfig& config,
                             std::vector<int> racks)
    : config_(config) {
  MRCP_CHECK(num_resources >= 1);
  const std::string err = config_.validate();
  MRCP_CHECK_MSG(err.empty(), err.c_str());
  cap_ = config_.max_concurrent_down >= 0
             ? std::min(config_.max_concurrent_down, num_resources)
             : num_resources - 1;
  const auto n = static_cast<std::size_t>(num_resources);
  streams_.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    streams_.emplace_back(config_.seed, static_cast<std::uint64_t>(r));
  }
  pending_.resize(n);
  down_.assign(n, 0);
  open_.assign(n, kNoOpenInterval);
  if (racks.empty()) racks.assign(n, 0);
  MRCP_CHECK_MSG(racks.size() == n, "one rack id per resource required");
  rack_of_ = std::move(racks);
  rack_ids_ = rack_of_;
  std::sort(rack_ids_.begin(), rack_ids_.end());
  rack_ids_.erase(std::unique(rack_ids_.begin(), rack_ids_.end()),
                  rack_ids_.end());
  // Rack streams live in the stream-id space above the resources, so a
  // rack clock never collides with a machine clock for any cluster size.
  rack_streams_.reserve(rack_ids_.size());
  for (std::size_t k = 0; k < rack_ids_.size(); ++k) {
    rack_streams_.emplace_back(config_.seed,
                               static_cast<std::uint64_t>(n + k));
  }
  rack_pending_.resize(rack_ids_.size());
}

Time FaultInjector::draw_ticks(ResourceId r, double mean_s) {
  const double s = streams_[static_cast<std::size_t>(r)].exponential(1.0 / mean_s);
  return std::max(Time{1}, seconds_to_ticks(s));
}

void FaultInjector::schedule_failure(des::Simulation& des, ResourceId r) {
  const Time delay = draw_ticks(r, config_.mtbf_s);
  pending_[static_cast<std::size_t>(r)] =
      des.schedule_after(delay, [this, &des, r] { on_failure(des, r); });
}

void FaultInjector::start(des::Simulation& des, TransitionFn on_down,
                          TransitionFn on_up) {
  const bool any =
      config_.failures_enabled() || config_.rack_failures_enabled();
  if (!any || cap_ == 0) return;
  MRCP_CHECK(on_down != nullptr && on_up != nullptr);
  on_down_ = std::move(on_down);
  on_up_ = std::move(on_up);
  if (config_.failures_enabled()) {
    for (std::size_t r = 0; r < streams_.size(); ++r) {
      schedule_failure(des, static_cast<ResourceId>(r));
    }
  }
  if (config_.rack_failures_enabled()) {
    for (std::size_t k = 0; k < rack_ids_.size(); ++k) {
      schedule_rack_failure(des, k);
    }
  }
}

void FaultInjector::stop(des::Simulation& des) {
  for (des::EventHandle& h : pending_) {
    if (h.pending()) des.cancel(h);
  }
  for (des::EventHandle& h : rack_pending_) {
    if (h.pending()) des.cancel(h);
  }
}

void FaultInjector::fail_resource(des::Simulation& des, ResourceId r, Time now,
                                  double repair_mean_s) {
  const auto ri = static_cast<std::size_t>(r);
  down_[ri] = 1;
  ++down_count_;
  ++failures_;
  open_[ri] = downtime_.size();
  downtime_.push_back(DownInterval{r, now, kNoTime});
  const Time repair_delay = draw_ticks(r, repair_mean_s);
  pending_[ri] =
      des.schedule_after(repair_delay, [this, &des, r] { on_repair(des, r); });
  on_down_(r, now);
}

void FaultInjector::on_failure(des::Simulation& des, ResourceId r) {
  if (down_count_ >= cap_) {
    // The concurrency cap holds this failure back; the resource survives
    // until its next exponential draw. The draw sequence — and therefore
    // the whole trace — still depends only on the injector's own state.
    ++suppressed_;
    schedule_failure(des, r);
    return;
  }
  fail_resource(des, r, des.now(), config_.mttr_s);
}

void FaultInjector::schedule_rack_failure(des::Simulation& des,
                                          std::size_t rack_index) {
  const double s =
      rack_streams_[rack_index].exponential(1.0 / config_.rack_mtbf_s);
  const Time delay = std::max(Time{1}, seconds_to_ticks(s));
  rack_pending_[rack_index] = des.schedule_after(
      delay, [this, &des, rack_index] { on_rack_failure(des, rack_index); });
}

void FaultInjector::on_rack_failure(des::Simulation& des,
                                    std::size_t rack_index) {
  const Time now = des.now();
  const int rack = rack_ids_[rack_index];
  ++rack_bursts_;
  for (std::size_t ri = 0; ri < down_.size(); ++ri) {
    if (rack_of_[ri] != rack || down_[ri] != 0) continue;
    if (down_count_ >= cap_) {
      // The cap spares this member; unlike an individual failure there is
      // no per-member retry — the rack's next burst may catch it.
      ++suppressed_;
      continue;
    }
    const auto r = static_cast<ResourceId>(ri);
    // The member's own next-failure clock is obsolete — it is going down
    // right now; its post-repair chain restarts the clock.
    if (pending_[ri].pending()) des.cancel(pending_[ri]);
    fail_resource(des, r, now, config_.rack_mttr_s);
  }
  schedule_rack_failure(des, rack_index);
}

void FaultInjector::on_repair(des::Simulation& des, ResourceId r) {
  const Time now = des.now();
  const auto ri = static_cast<std::size_t>(r);
  MRCP_CHECK(down_[ri] != 0);
  down_[ri] = 0;
  --down_count_;
  ++repairs_;
  MRCP_CHECK(open_[ri] != kNoOpenInterval);
  downtime_[open_[ri]].end = now;
  open_[ri] = kNoOpenInterval;
  // With rack bursts only (mtbf_s == 0) a repaired machine has no
  // individual failure clock to restart.
  if (config_.failures_enabled()) schedule_failure(des, r);
  on_up_(r, now);
}

namespace {
// v2: rack-burst clocks (rack ids, streams, pending bursts, counter).
constexpr std::uint8_t kInjectorStateVersion = 2;
constexpr std::uint64_t kNoOpenEncoded =
    std::numeric_limits<std::uint64_t>::max();
}  // namespace

std::string FaultInjector::encode_state() const {
  io::Encoder enc;
  enc.u8(kInjectorStateVersion);
  enc.u32(static_cast<std::uint32_t>(streams_.size()));
  for (std::size_t r = 0; r < streams_.size(); ++r) {
    enc.bytes(streams_[r].save_state());
    enc.boolean(down_[r] != 0);
    enc.u64(open_[r] == kNoOpenInterval ? kNoOpenEncoded
                                        : static_cast<std::uint64_t>(open_[r]));
    const bool has_pending = pending_[r].pending();
    enc.boolean(has_pending);
    enc.ticks(has_pending ? pending_[r].time() : kTimeZero);
    enc.u64(has_pending ? pending_[r].seq() : 0);
  }
  enc.u32(static_cast<std::uint32_t>(downtime_.size()));
  for (const DownInterval& interval : downtime_) {
    enc.i64(interval.resource);
    enc.ticks(interval.start);
    enc.ticks(interval.end);
  }
  enc.i64(down_count_);
  enc.u64(failures_);
  enc.u64(repairs_);
  enc.u64(suppressed_);
  enc.u32(static_cast<std::uint32_t>(rack_ids_.size()));
  for (std::size_t k = 0; k < rack_ids_.size(); ++k) {
    enc.i64(rack_ids_[k]);
    enc.bytes(rack_streams_[k].save_state());
    const bool has_pending = rack_pending_[k].pending();
    enc.boolean(has_pending);
    enc.ticks(has_pending ? rack_pending_[k].time() : kTimeZero);
    enc.u64(has_pending ? rack_pending_[k].seq() : 0);
  }
  enc.u64(rack_bursts_);
  return enc.take();
}

bool FaultInjector::restore_state(std::string_view state, std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  io::Decoder dec(state);
  const std::uint8_t version = dec.u8();
  if (dec.ok() && version != kInjectorStateVersion) {
    return fail("unsupported injector state version " +
                std::to_string(version));
  }
  const std::uint32_t n = dec.u32();
  if (dec.ok() && n != static_cast<std::uint32_t>(streams_.size())) {
    return fail("snapshot injector has " + std::to_string(n) +
                " resources, this one has " + std::to_string(streams_.size()));
  }
  std::vector<std::string> rng_states(streams_.size());
  std::vector<std::uint8_t> down(streams_.size(), 0);
  std::vector<std::size_t> open(streams_.size(), kNoOpenInterval);
  std::vector<PendingTransition> pending;
  for (std::size_t r = 0; r < streams_.size() && dec.ok(); ++r) {
    rng_states[r] = dec.bytes();
    down[r] = dec.boolean() ? 1 : 0;
    const std::uint64_t open_index = dec.u64();
    open[r] = open_index == kNoOpenEncoded
                  ? kNoOpenInterval
                  : static_cast<std::size_t>(open_index);
    const bool has_pending = dec.boolean();
    const Time time = dec.ticks();
    const std::uint64_t seq = dec.u64();
    if (has_pending) {
      // A down resource's pending event is its repair; an up resource's
      // is its next failure.
      pending.push_back(PendingTransition{static_cast<ResourceId>(r), time,
                                          seq, down[r] != 0});
    }
  }
  std::vector<DownInterval> downtime;
  const std::uint32_t num_intervals = dec.u32();
  for (std::uint32_t i = 0; i < num_intervals && dec.ok(); ++i) {
    DownInterval interval;
    interval.resource = static_cast<ResourceId>(dec.i64());
    interval.start = dec.ticks();
    interval.end = dec.ticks();
    downtime.push_back(interval);
  }
  const std::int64_t down_count = dec.i64();
  const std::uint64_t failures = dec.u64();
  const std::uint64_t repairs = dec.u64();
  const std::uint64_t suppressed = dec.u64();
  const std::uint32_t num_racks = dec.u32();
  if (dec.ok() && num_racks != static_cast<std::uint32_t>(rack_ids_.size())) {
    return fail("snapshot injector has " + std::to_string(num_racks) +
                " racks, this one has " + std::to_string(rack_ids_.size()));
  }
  std::vector<std::string> rack_rng_states(rack_ids_.size());
  for (std::size_t k = 0; k < rack_ids_.size() && dec.ok(); ++k) {
    const std::int64_t rack_id = dec.i64();
    if (dec.ok() && rack_id != rack_ids_[k]) {
      return fail("snapshot rack id " + std::to_string(rack_id) +
                  " does not match this injector's rack " +
                  std::to_string(rack_ids_[k]));
    }
    rack_rng_states[k] = dec.bytes();
    const bool has_pending = dec.boolean();
    const Time time = dec.ticks();
    const std::uint64_t seq = dec.u64();
    if (has_pending) {
      PendingTransition t;
      t.time = time;
      t.seq = seq;
      t.rack = rack_ids_[k];
      pending.push_back(t);
    }
  }
  const std::uint64_t rack_bursts = dec.u64();
  if (!dec.ok()) return fail("corrupt injector state: " + dec.error());
  if (!dec.done()) {
    return fail("trailing bytes after injector state at byte " +
                std::to_string(dec.offset()));
  }
  for (std::size_t r = 0; r < streams_.size(); ++r) {
    if (!streams_[r].load_state(rng_states[r])) {
      return fail("malformed RNG state for resource " + std::to_string(r));
    }
  }
  for (std::size_t k = 0; k < rack_streams_.size(); ++k) {
    if (!rack_streams_[k].load_state(rack_rng_states[k])) {
      return fail("malformed RNG state for rack " +
                  std::to_string(rack_ids_[k]));
    }
  }
  down_ = std::move(down);
  open_ = std::move(open);
  downtime_ = std::move(downtime);
  down_count_ = static_cast<int>(down_count);
  failures_ = failures;
  repairs_ = repairs;
  suppressed_ = suppressed;
  rack_bursts_ = rack_bursts;
  pending_.assign(streams_.size(), des::EventHandle{});
  rack_pending_.assign(rack_ids_.size(), des::EventHandle{});
  std::sort(pending.begin(), pending.end(),
            [](const PendingTransition& a, const PendingTransition& b) {
              return a.seq < b.seq;
            });
  restored_pending_ = std::move(pending);
  return true;
}

void FaultInjector::resume(TransitionFn on_down, TransitionFn on_up) {
  if ((!config_.failures_enabled() && !config_.rack_failures_enabled()) ||
      cap_ == 0) {
    return;
  }
  MRCP_CHECK(on_down != nullptr && on_up != nullptr);
  on_down_ = std::move(on_down);
  on_up_ = std::move(on_up);
}

void FaultInjector::schedule_transition(des::Simulation& des,
                                        const PendingTransition& t) {
  if (t.rack >= 0) {
    const auto it = std::lower_bound(rack_ids_.begin(), rack_ids_.end(),
                                     t.rack);
    MRCP_CHECK(it != rack_ids_.end() && *it == t.rack);
    const auto k = static_cast<std::size_t>(it - rack_ids_.begin());
    MRCP_CHECK(!rack_pending_[k].pending());
    rack_pending_[k] =
        des.schedule_at(t.time, [this, &des, k] { on_rack_failure(des, k); });
    return;
  }
  const auto ri = static_cast<std::size_t>(t.resource);
  MRCP_CHECK(ri < pending_.size() && !pending_[ri].pending());
  if (t.repair) {
    pending_[ri] = des.schedule_at(
        t.time, [this, &des, r = t.resource] { on_repair(des, r); });
  } else {
    pending_[ri] = des.schedule_at(
        t.time, [this, &des, r = t.resource] { on_failure(des, r); });
  }
}

std::vector<int> cluster_racks(const Cluster& cluster) {
  std::vector<int> racks;
  racks.reserve(cluster.resources().size());
  for (const Resource& r : cluster.resources()) racks.push_back(r.rack);
  return racks;
}

bool is_straggler(const FaultConfig& config, JobId job, int task_index) {
  if (config.straggler_prob <= 0.0) return false;
  std::uint64_t h = splitmix64(
      static_cast<std::uint64_t>(job) * std::uint64_t{0x9E3779B97F4A7C15} +
      static_cast<std::uint64_t>(task_index) + std::uint64_t{1});
  h = splitmix64(h ^ config.seed);
  // 53-bit mantissa -> uniform double in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < config.straggler_prob;
}

std::size_t apply_stragglers(Workload& workload, const FaultConfig& config) {
  if (!config.stragglers_enabled()) return 0;
  std::size_t count = 0;
  for (Job& job : workload.jobs) {
    for (std::size_t ti = 0; ti < job.num_tasks(); ++ti) {
      if (!is_straggler(config, job.id, static_cast<int>(ti))) continue;
      Task& task = ti < job.map_tasks.size()
                       ? job.map_tasks[ti]
                       : job.reduce_tasks[ti - job.map_tasks.size()];
      const double slowed =
          static_cast<double>(task.exec_time.count()) * config.straggler_factor;
      task.exec_time = std::max<Time>(
          task.exec_time, Time{std::llround(slowed)});
      ++count;
    }
  }
  return count;
}

}  // namespace mrcp::sim
