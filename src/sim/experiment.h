// Factor-at-a-time experiment runner (paper §VI.A).
//
// Each experiment point runs `replications` independent simulations
// (fresh workload seed per replication) and reports each metric as a
// mean with a 95% confidence half-width, exactly as the paper plots
// (bars originating from the average value).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "sim/metrics.h"

namespace mrcp::sim {

/// The four per-run metrics of §VI.
struct RunMetrics {
  double O_seconds = 0.0;      ///< scheduling overhead per job
  double T_seconds = 0.0;      ///< average turnaround
  double N_late = 0.0;         ///< late jobs (count)
  double P_percent = 0.0;      ///< late percentage
};

/// Build RunMetrics from a finished simulation.
RunMetrics summarize_run(const SimMetrics& metrics, double warmup_fraction);

struct ReplicatedMetrics {
  ConfidenceInterval O;
  ConfidenceInterval T;
  ConfidenceInterval N;
  ConfidenceInterval P;
  std::size_t replications = 0;
};

/// Run `replications` simulations; `run` receives the replication index
/// (the caller derives the workload seed from it, typically with
/// replication_seed()). With `num_threads > 1` replications execute on a
/// thread pool; `run` must then be thread-safe (our simulators are —
/// each replication builds its own workload, RM, and DES). Results are
/// aggregated in replication order, so the output is identical for any
/// thread count.
ReplicatedMetrics replicate(
    std::size_t replications,
    const std::function<RunMetrics(std::size_t replication)>& run,
    unsigned num_threads = 1);

/// Standard result-table headers used by the bench binaries:
/// {<param>, O(s), ±, T(s), ±, N, P(%), ±}.
std::vector<std::string> result_headers(const std::string& param_name);

/// Format one swept point as a table row matching result_headers().
std::vector<std::string> result_row(const std::string& param_value,
                                    const ReplicatedMetrics& m);

}  // namespace mrcp::sim
