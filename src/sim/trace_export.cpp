#include "sim/trace_export.h"

#include <fstream>
#include <sstream>

namespace mrcp::sim {

namespace {
constexpr const char* kHeader = "job,task,type,resource,start_s,end_s,started\n";

void append_row(std::ostringstream& os, JobId job, int task, TaskType type,
                ResourceId resource, Time start, Time end, bool started) {
  os << job << ',' << task << ',' << task_type_name(type) << ',' << resource
     << ',' << ticks_to_seconds(start) << ',' << ticks_to_seconds(end) << ','
     << (started ? 1 : 0) << '\n';
}
}  // namespace

std::string plan_to_csv(const Plan& plan) {
  std::ostringstream os;
  os << kHeader;
  for (const PlannedTask& pt : plan.tasks) {
    append_row(os, pt.job, pt.task_index, pt.type, pt.resource, pt.start,
               pt.end, pt.started);
  }
  return os.str();
}

std::string execution_to_csv(const std::vector<ExecutedTask>& executed,
                             const Workload& workload) {
  std::ostringstream os;
  os << kHeader;
  for (const ExecutedTask& et : executed) {
    const Job& job = workload.jobs[static_cast<std::size_t>(et.job)];
    const TaskType type =
        job.task(static_cast<std::size_t>(et.task_index)).type;
    append_row(os, et.job, et.task_index, type, et.resource, et.start, et.end,
               /*started=*/true);
  }
  return os.str();
}

std::string downtime_to_csv(const std::vector<DownInterval>& downtime) {
  std::ostringstream os;
  os << "resource,down_s,up_s\n";
  for (const DownInterval& d : downtime) {
    os << d.resource << ',' << ticks_to_seconds(d.start) << ',';
    if (d.end != kNoTime) os << ticks_to_seconds(d.end);
    os << '\n';
  }
  return os.str();
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace mrcp::sim
