// Crash-tolerant MRCP-RM simulation driver (docs/crash_recovery.md).
//
// simulate_mrcp lives here as a driver class so that *all* per-run state
// — the per-task execution matrix, pending DES events, metric
// accumulators, the RM and the fault injector — can be captured into a
// snapshot and rebuilt from one. Durability is strictly opt-in: with
// DurabilityOptions off the driver takes the exact pre-durability code
// path (plain des.run(), no journal writes) and produces byte-identical
// output.
//
// With a journal attached, the RM appends one record per scheduler-
// visible event; the driver runs the DES one event at a time and captures
// a full world snapshot whenever the journal record count crosses a
// multiple of snapshot_every. Because the capture points are a pure
// function of the record count, an uninterrupted run and a crash/restore
// run hit the same safe points.
//
// Recovery re-schedules every captured pending event — arrivals, task
// completions, the deferral wakeup, injector transitions — in ascending
// *original* DES sequence order. Fresh sequence numbers are assigned in
// that order, so every same-tick tie-break resolves exactly as in the
// uninterrupted run; from there determinism of the RM (seeded solver,
// epoch-derived seeds) closes the argument. The journal records past the
// snapshot cursor are not replayed into effect: the resumed run re-emits
// them and the Journal byte-compares each against the on-disk suffix.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/io/codec.h"
#include "common/io/file_io.h"
#include "common/io/record_io.h"
#include "common/types.h"
#include "core/journal.h"
#include "core/mrcp_rm.h"
#include "des/simulation.h"
#include "sim/cluster_sim.h"
#include "sim/fault_injector.h"
#include "sim/sim_internal.h"

namespace mrcp::sim {

namespace {

constexpr std::uint8_t kWorldStateVersion = 1;

void encode_task_list(io::Encoder& enc, const std::vector<ExecutedTask>& v) {
  enc.u32(static_cast<std::uint32_t>(v.size()));
  for (const ExecutedTask& et : v) {
    enc.i64(et.job);
    enc.i64(et.task_index);
    enc.i64(et.resource);
    enc.ticks(et.start);
    enc.ticks(et.end);
  }
}

std::vector<ExecutedTask> decode_task_list(io::Decoder& dec) {
  std::vector<ExecutedTask> v;
  const std::uint32_t n = dec.u32();
  for (std::uint32_t i = 0; i < n && dec.ok(); ++i) {
    ExecutedTask et;
    et.job = static_cast<JobId>(dec.i64());
    et.task_index = static_cast<int>(dec.i64());
    et.resource = static_cast<ResourceId>(dec.i64());
    et.start = dec.ticks();
    et.end = dec.ticks();
    v.push_back(et);
  }
  return v;
}

MrcpConfig make_rm_config(const MrcpConfig& config, const SimOptions& options) {
  MrcpConfig rm_config = config;
  rm_config.validate_plans = rm_config.validate_plans || options.validate_plans;
  return rm_config;
}

/// One captured not-yet-fired event, tagged with its original DES
/// sequence number. The resume path re-schedules all categories merged
/// in ascending seq order, which reproduces every same-tick tie-break of
/// the uninterrupted run.
struct PendingEvent {
  enum class Kind : std::uint8_t {
    kArrival,
    kTaskEnd,
    kDeferralWakeup,
    kInjector,
  };
  std::uint64_t seq = 0;
  Kind kind = Kind::kArrival;
  Time time = kTimeZero;
  std::size_t job = 0;         ///< kArrival / kTaskEnd (dense job id)
  std::size_t task_index = 0;  ///< kTaskEnd
  FaultInjector::PendingTransition transition;  ///< kInjector
};

class MrcpSimDriver {
 public:
  MrcpSimDriver(const Workload& w, const MrcpConfig& config,
                const SimOptions& options)
      : w_(w),
        options_(options),
        rm_(w.cluster, make_rm_config(config, options)),
        injector_(w.cluster.size(), options.faults, cluster_racks(w.cluster)) {
    metrics_.records = internal::make_records(w);
    tasks_.resize(w.jobs.size());
    remaining_.resize(w.jobs.size());
    jobs_by_id_.resize(w.jobs.size(), nullptr);
    arrival_events_.resize(w.jobs.size());
    for (const Job& job : w.jobs) {
      const auto ji = static_cast<std::size_t>(job.id);
      tasks_[ji].resize(job.num_tasks());
      remaining_[ji] = job.num_tasks();
      jobs_by_id_[ji] = &job;
    }
    jobs_left_ = w.jobs.size();
  }

  void set_straggler_tasks(std::size_t n) {
    metrics_.failure.straggler_tasks = n;
  }

  SimMetrics run() {
    const DurabilityOptions& dur = options_.durability;
    if (!dur.enabled()) {
      // The exact pre-durability code path: no journal, no snapshots, no
      // per-event bookkeeping.
      start_fresh();
      des_.run();
      return finish(/*crashed=*/false);
    }
    journal_.set_crash_after(dur.crash_after_records);
    bool resumed = false;
    if (dur.restore) {
      resumed = resume_from_disk();
    } else {
      std::string error;
      MRCP_CHECK_MSG(journal_.open(dur.journal_path(), &error), error.c_str());
      MRCP_CHECK_MSG(
          snapshot_writer_.open(dur.snapshot_path(), /*truncate=*/true),
          "cannot open snapshot file for writing");
      next_snapshot_at_ = dur.snapshot_every;
    }
    rm_.attach_journal(&journal_);
    if (!resumed) start_fresh();
    bool crashed = false;
    while (true) {
      if (journal_.crashed()) {
        // The injected crash point was hit inside the last event; the
        // "process" is dead — abandon the run with whatever reached disk.
        crashed = true;
        break;
      }
      if (!des_.step()) break;
      maybe_snapshot();
    }
    return finish(crashed);
  }

 private:
  // Per-task driver state.
  struct TaskState {
    des::EventHandle end_event;
    bool started = false;
    ResourceId resource = kNoResource;
    Time start = kNoTime;
    Time end = kNoTime;
  };

  void start_fresh() {
    injector_.start(
        des_, [this](ResourceId r, Time t) { on_resource_down(r, t); },
        [this](ResourceId r, Time t) { on_resource_up(r, t); });
    for (const Job& job : w_.jobs) schedule_arrival(job);
  }

  void schedule_arrival(const Job& job) {
    arrival_events_[static_cast<std::size_t>(job.id)] =
        des_.schedule_at(job.arrival_time, [this, &job] {
          rm_.submit(job, des_.now());
          const Plan& plan = rm_.reschedule(des_.now());
          apply_plan(plan);
          update_deferral_wakeup();
        });
  }

  /// Schedule the completion event of (job, task). A committed task's
  /// event just completes it; an uncommitted ("future") task's event
  /// first marks the implicit start — the task began at its planned
  /// start time without a replan touching it since.
  void schedule_task_end(JobId job_id, int task_index, Time end,
                         bool committed) {
    TaskState& ts = tasks_[static_cast<std::size_t>(job_id)]
                          [static_cast<std::size_t>(task_index)];
    if (committed) {
      ts.end_event = des_.schedule_at(
          end, [this, job_id, task_index] { on_task_end(job_id, task_index); });
      return;
    }
    ts.end_event = des_.schedule_at(end, [this, job_id, task_index] {
      TaskState& inner = tasks_[static_cast<std::size_t>(job_id)]
                               [static_cast<std::size_t>(task_index)];
      // The task implicitly started at inner.start; mark and complete.
      inner.started = true;
      on_task_end(job_id, task_index);
    });
  }

  void schedule_deferral_wakeup(Time at) {
    deferral_wakeup_ = des_.schedule_at(at, [this] {
      deferral_wakeup_at_ = kNoTime;
      const Plan& plan = rm_.reschedule(des_.now());
      apply_plan(plan);
      update_deferral_wakeup();
    });
  }

  void on_task_end(JobId job_id, int task_index) {
    const auto ji = static_cast<std::size_t>(job_id);
    TaskState& ts = tasks_[ji][static_cast<std::size_t>(task_index)];
    MRCP_CHECK(ts.started);
    MRCP_CHECK(des_.now() == ts.end);
    executed_.push_back(
        ExecutedTask{job_id, task_index, ts.resource, ts.start, ts.end});
    MRCP_CHECK(remaining_[ji] > 0);
    if (--remaining_[ji] == 0) {
      JobRecord& record = metrics_.records[ji];
      finish_job_record(record, des_.now());
      if (record.late && record.failure_affected) {
        ++metrics_.failure.jobs_late_failure_affected;
      }
      MRCP_CHECK(jobs_left_ > 0);
      // Once the workload drains, stop injecting faults so the event
      // list can empty.
      if (--jobs_left_ == 0) injector_.stop(des_);
    }
  }

  void apply_plan(const Plan& plan) {
    if (plan.parked_tasks > 0) {
      // A degraded plan may omit the unstarted tasks of parked jobs
      // (no currently-up resource can host them). Any end event still
      // pending from a previous epoch for such a task is stale — cancel
      // it and forget the placement; the RM re-plans the task once
      // capacity returns.
      std::set<std::pair<JobId, int>> in_plan;
      for (const PlannedTask& pt : plan.tasks) {
        in_plan.emplace(pt.job, pt.task_index);
      }
      for (std::size_t ji = 0; ji < tasks_.size(); ++ji) {
        for (std::size_t ti = 0; ti < tasks_[ji].size(); ++ti) {
          TaskState& ts = tasks_[ji][ti];
          if (ts.started || !ts.end_event.pending()) continue;
          if (in_plan.count({static_cast<JobId>(ji), static_cast<int>(ti)})) {
            continue;
          }
          des_.cancel(ts.end_event);
          ts = TaskState{};
        }
      }
    }
    for (const PlannedTask& pt : plan.tasks) {
      const auto ji = static_cast<std::size_t>(pt.job);
      TaskState& ts = tasks_[ji][static_cast<std::size_t>(pt.task_index)];
      if (ts.started) {
        // Running (or finished-this-tick) tasks must keep their placement.
        MRCP_CHECK_MSG(ts.resource == pt.resource && ts.start == pt.start &&
                           ts.end == pt.end,
                       "RM moved a started task");
        continue;
      }
      if (pt.started) {
        // Starts now (or started at this very tick): commit it.
        ts.started = true;
        ts.resource = pt.resource;
        ts.start = pt.start;
        ts.end = pt.end;
        if (ts.end_event.pending()) des_.cancel(ts.end_event);
        schedule_task_end(pt.job, pt.task_index, pt.end, /*committed=*/true);
        continue;
      }
      // Future task: (re)schedule its completion event; a later replan may
      // cancel it again.
      if (ts.end_event.pending()) des_.cancel(ts.end_event);
      ts.resource = pt.resource;
      ts.start = pt.start;
      ts.end = pt.end;
      schedule_task_end(pt.job, pt.task_index, pt.end, /*committed=*/false);
    }
    // Mark plan-started tasks that begin before their end event fires:
    // handled lazily above; nothing else to do.
  }

  void update_deferral_wakeup() {
    const Time next = rm_.next_deferred_release();
    if (next == deferral_wakeup_at_) return;
    if (deferral_wakeup_.pending()) des_.cancel(deferral_wakeup_);
    deferral_wakeup_at_ = next;
    if (next == kNoTime) return;
    const Time at = std::max(next, des_.now());
    schedule_deferral_wakeup(at);
  }

  void on_resource_down(ResourceId r, Time t) {
    // Kill every attempt occupying the failed resource at t: any task
    // whose interval began before t, plus tasks explicitly committed at
    // this very tick (started flag). A merely *planned* task starting at
    // t has not begun — the RM re-places it below. Tasks ending exactly
    // at t completed normally.
    for (std::size_t ji = 0; ji < tasks_.size(); ++ji) {
      for (std::size_t ti = 0; ti < tasks_[ji].size(); ++ti) {
        TaskState& ts = tasks_[ji][ti];
        if (!ts.end_event.pending() || ts.resource != r) continue;
        const bool occupies = ts.start < t || (ts.started && ts.start == t);
        if (!occupies || ts.end <= t) continue;
        des_.cancel(ts.end_event);
        metrics_.killed.push_back(ExecutedTask{
            static_cast<JobId>(ji), static_cast<int>(ti), r, ts.start, t});
        ++metrics_.failure.tasks_killed;
        metrics_.failure.wasted_ticks += t - ts.start;
        metrics_.records[ji].failure_affected = true;
        ts = TaskState{};
      }
    }
    rm_.handle_resource_down(r, t);
    apply_plan(rm_.reschedule(t));
    update_deferral_wakeup();
  }

  void on_resource_up(ResourceId r, Time t) {
    rm_.handle_resource_up(r, t);
    apply_plan(rm_.reschedule(t));
    update_deferral_wakeup();
  }

  // ---- Snapshots ----

  /// Serialize the full world: DES clock, RM state, injector state, the
  /// per-task matrix with each pending event's original (time, seq),
  /// accumulated results, and per-job completion flags. Everything a
  /// restore needs to continue the run bit-for-bit.
  std::string encode_world() const {
    io::Encoder enc;
    enc.u8(kWorldStateVersion);
    enc.ticks(des_.now());
    enc.bytes(rm_.encode_state());
    enc.bytes(injector_.encode_state());
    enc.u32(static_cast<std::uint32_t>(tasks_.size()));
    for (std::size_t ji = 0; ji < tasks_.size(); ++ji) {
      enc.u32(static_cast<std::uint32_t>(tasks_[ji].size()));
      for (const TaskState& ts : tasks_[ji]) {
        enc.boolean(ts.started);
        enc.i64(ts.resource);
        enc.ticks(ts.start);
        enc.ticks(ts.end);
        const bool end_pending = ts.end_event.pending();
        enc.boolean(end_pending);
        enc.u64(end_pending ? ts.end_event.seq() : 0);
      }
      const bool arrival_pending = arrival_events_[ji].pending();
      enc.boolean(arrival_pending);
      enc.u64(arrival_pending ? arrival_events_[ji].seq() : 0);
    }
    const bool wakeup_pending = deferral_wakeup_.pending();
    enc.boolean(wakeup_pending);
    enc.ticks(deferral_wakeup_at_);
    enc.ticks(wakeup_pending ? deferral_wakeup_.time() : kTimeZero);
    enc.u64(wakeup_pending ? deferral_wakeup_.seq() : 0);
    encode_task_list(enc, executed_);
    encode_task_list(enc, metrics_.killed);
    for (const JobRecord& r : metrics_.records) {
      enc.ticks(r.completion);
      enc.boolean(r.late);
      enc.boolean(r.failure_affected);
    }
    return enc.take();
  }

  bool restore_world(std::string_view state, std::string* error) {
    const auto fail = [error](const std::string& message) {
      *error = message;
      return false;
    };
    io::Decoder dec(state);
    const std::uint8_t version = dec.u8();
    if (dec.ok() && version != kWorldStateVersion) {
      return fail("unsupported world state version " + std::to_string(version));
    }
    const Time now = dec.ticks();
    const std::string rm_state = dec.bytes();
    const std::string injector_state = dec.bytes();
    const std::uint32_t num_jobs = dec.u32();
    if (dec.ok() && num_jobs != tasks_.size()) {
      return fail("snapshot has " + std::to_string(num_jobs) +
                  " jobs, workload has " + std::to_string(tasks_.size()));
    }
    struct TaskCapture {
      bool started = false;
      ResourceId resource = kNoResource;
      Time start = kNoTime;
      Time end = kNoTime;
      bool end_pending = false;
      std::uint64_t end_seq = 0;
    };
    std::vector<std::vector<TaskCapture>> captures(tasks_.size());
    std::vector<std::pair<bool, std::uint64_t>> arrivals(tasks_.size(),
                                                         {false, 0});
    for (std::size_t ji = 0; ji < tasks_.size() && dec.ok(); ++ji) {
      const std::uint32_t num_tasks = dec.u32();
      if (dec.ok() && num_tasks != tasks_[ji].size()) {
        return fail("snapshot job " + std::to_string(ji) + " has " +
                    std::to_string(num_tasks) + " tasks, workload has " +
                    std::to_string(tasks_[ji].size()));
      }
      captures[ji].resize(tasks_[ji].size());
      for (TaskCapture& tc : captures[ji]) {
        tc.started = dec.boolean();
        tc.resource = static_cast<ResourceId>(dec.i64());
        tc.start = dec.ticks();
        tc.end = dec.ticks();
        tc.end_pending = dec.boolean();
        tc.end_seq = dec.u64();
      }
      arrivals[ji].first = dec.boolean();
      arrivals[ji].second = dec.u64();
    }
    const bool wakeup_pending = dec.boolean();
    const Time wakeup_logical = dec.ticks();
    const Time wakeup_time = dec.ticks();
    const std::uint64_t wakeup_seq = dec.u64();
    std::vector<ExecutedTask> executed = decode_task_list(dec);
    std::vector<ExecutedTask> killed = decode_task_list(dec);
    std::vector<Time> completion(metrics_.records.size(), kNoTime);
    std::vector<std::uint8_t> late(metrics_.records.size(), 0);
    std::vector<std::uint8_t> affected(metrics_.records.size(), 0);
    for (std::size_t ji = 0; ji < metrics_.records.size() && dec.ok(); ++ji) {
      completion[ji] = dec.ticks();
      late[ji] = dec.boolean() ? 1 : 0;
      affected[ji] = dec.boolean() ? 1 : 0;
    }
    if (!dec.ok()) return fail("corrupt world state: " + dec.error());
    if (!dec.done()) {
      return fail("trailing bytes after world state at byte " +
                  std::to_string(dec.offset()));
    }

    if (!rm_.restore_state(rm_state, error)) return false;
    if (!injector_.restore_state(injector_state, error)) return false;
    des_.restore_clock(now);

    executed_ = std::move(executed);
    metrics_.killed = std::move(killed);
    metrics_.failure.tasks_killed = metrics_.killed.size();
    metrics_.failure.wasted_ticks = kTimeZero;
    for (const ExecutedTask& k : metrics_.killed) {
      metrics_.failure.wasted_ticks += k.end - k.start;
    }
    jobs_left_ = 0;
    metrics_.failure.jobs_late_failure_affected = 0;
    for (std::size_t ji = 0; ji < metrics_.records.size(); ++ji) {
      JobRecord& r = metrics_.records[ji];
      r.completion = completion[ji];
      r.late = late[ji] != 0;
      r.failure_affected = affected[ji] != 0;
      if (!r.completed()) ++jobs_left_;
      if (r.late && r.failure_affected) {
        ++metrics_.failure.jobs_late_failure_affected;
      }
    }
    for (std::size_t ji = 0; ji < remaining_.size(); ++ji) {
      remaining_[ji] = tasks_[ji].size();
    }
    for (const ExecutedTask& et : executed_) {
      const auto ji = static_cast<std::size_t>(et.job);
      if (ji >= remaining_.size() || remaining_[ji] == 0) {
        return fail("snapshot executed-task list is inconsistent");
      }
      --remaining_[ji];
    }

    // Collect every captured pending event and re-schedule the lot in
    // ascending original-seq order.
    std::vector<PendingEvent> events;
    for (std::size_t ji = 0; ji < tasks_.size(); ++ji) {
      for (std::size_t ti = 0; ti < tasks_[ji].size(); ++ti) {
        const TaskCapture& tc = captures[ji][ti];
        TaskState& ts = tasks_[ji][ti];
        ts.started = tc.started;
        ts.resource = tc.resource;
        ts.start = tc.start;
        ts.end = tc.end;
        if (tc.end_pending) {
          PendingEvent ev;
          ev.seq = tc.end_seq;
          ev.kind = PendingEvent::Kind::kTaskEnd;
          ev.time = tc.end;
          ev.job = ji;
          ev.task_index = ti;
          events.push_back(ev);
        }
      }
      if (arrivals[ji].first) {
        PendingEvent ev;
        ev.seq = arrivals[ji].second;
        ev.kind = PendingEvent::Kind::kArrival;
        ev.time = jobs_by_id_[ji]->arrival_time;
        ev.job = ji;
        events.push_back(ev);
      }
    }
    if (wakeup_pending) {
      PendingEvent ev;
      ev.seq = wakeup_seq;
      ev.kind = PendingEvent::Kind::kDeferralWakeup;
      ev.time = wakeup_time;
      events.push_back(ev);
    }
    for (const FaultInjector::PendingTransition& t :
         injector_.pending_transitions()) {
      PendingEvent ev;
      ev.seq = t.seq;
      ev.kind = PendingEvent::Kind::kInjector;
      ev.time = t.time;
      ev.transition = t;
      events.push_back(ev);
    }
    std::sort(events.begin(), events.end(),
              [](const PendingEvent& a, const PendingEvent& b) {
                return a.seq < b.seq;
              });
    for (std::size_t i = 1; i < events.size(); ++i) {
      if (events[i].seq == events[i - 1].seq) {
        return fail("duplicate event sequence number in snapshot");
      }
    }
    for (const PendingEvent& ev : events) {
      switch (ev.kind) {
        case PendingEvent::Kind::kArrival:
          schedule_arrival(*jobs_by_id_[ev.job]);
          break;
        case PendingEvent::Kind::kTaskEnd: {
          const TaskState& ts = tasks_[ev.job][ev.task_index];
          schedule_task_end(static_cast<JobId>(ev.job),
                            static_cast<int>(ev.task_index), ts.end,
                            /*committed=*/ts.started);
          break;
        }
        case PendingEvent::Kind::kDeferralWakeup:
          schedule_deferral_wakeup(ev.time);
          break;
        case PendingEvent::Kind::kInjector:
          injector_.schedule_transition(des_, ev.transition);
          break;
      }
    }
    deferral_wakeup_at_ = wakeup_logical;
    injector_.resume([this](ResourceId r, Time t) { on_resource_down(r, t); },
                     [this](ResourceId r, Time t) { on_resource_up(r, t); });
    return true;
  }

  void maybe_snapshot() {
    const std::uint64_t every = options_.durability.snapshot_every;
    if (every == 0 || journal_.crashed()) return;
    const std::uint64_t total = journal_.records_appended();
    if (total < next_snapshot_at_) return;
    SnapshotRecord snap;
    snap.journal_cursor = total;
    snap.state = encode_world();
    MRCP_CHECK_MSG(snapshot_writer_.append(encode_snapshot_record(snap)),
                   "snapshot write failed");
    next_snapshot_at_ = (total / every + 1) * every;
  }

  /// Returns true when a snapshot was restored; false means cold
  /// restore — the run starts from scratch with the journal in
  /// verification mode over its entire valid prefix. Unreadable files
  /// and corrupt snapshots chosen for restore are fatal.
  bool resume_from_disk() {
    const DurabilityOptions& dur = options_.durability;
    bool journal_opened = false;
    const io::FramedData jdata =
        io::read_framed_file(dur.journal_path(), &journal_opened);
    MRCP_CHECK_MSG(journal_opened, "restore: cannot read the journal file");
    bool snap_opened = false;
    const io::FramedData sdata =
        io::read_framed_file(dur.snapshot_path(), &snap_opened);
    std::optional<SnapshotRecord> snap;
    if (snap_opened) {
      snap = choose_snapshot(sdata.records,
                             static_cast<std::uint64_t>(jdata.records.size()));
      // Drop a torn snapshot tail so future captures append to a clean
      // prefix (mirrors the journal truncation in Journal::open_resume).
      if (sdata.tail != io::ReadStatus::kEof) {
        MRCP_CHECK_MSG(
            io::truncate_file(dur.snapshot_path(), sdata.valid_bytes),
            "restore: cannot truncate the snapshot file");
      }
    }
    MRCP_CHECK_MSG(
        snapshot_writer_.open(dur.snapshot_path(), /*truncate=*/false),
        "cannot open snapshot file for writing");
    std::uint64_t cursor = 0;
    if (snap.has_value()) {
      std::string error;
      MRCP_CHECK_MSG(restore_world(snap->state, &error), error.c_str());
      cursor = snap->journal_cursor;
    }
    std::vector<std::string> expected(
        jdata.records.begin() + static_cast<std::ptrdiff_t>(cursor),
        jdata.records.end());
    std::string error;
    MRCP_CHECK_MSG(
        journal_.open_resume(dur.journal_path(), jdata.valid_bytes,
                             std::move(expected), cursor, &error),
        error.c_str());
    const std::uint64_t every = dur.snapshot_every;
    next_snapshot_at_ = every == 0 ? 0 : (cursor / every + 1) * every;
    return snap.has_value();
  }

  SimMetrics finish(bool crashed) {
    metrics_.crash_stopped = crashed;
    if (!crashed) {
      // Every job must have completed.
      for (std::size_t ji = 0; ji < remaining_.size(); ++ji) {
        MRCP_CHECK_MSG(remaining_[ji] == 0, "job did not finish");
      }
      if (options_.durability.enabled()) {
        MRCP_CHECK_MSG(journal_.ok(), journal_.error().c_str());
        MRCP_CHECK_MSG(
            journal_.verify_pending() == 0,
            "resumed run finished before re-emitting every journal record");
      }
    }
    // Note: rm.stats().jobs_completed can lag the simulation — the RM only
    // sweeps completions when reschedule() runs, and the final tasks finish
    // after the last arrival-triggered invocation.
    const MrcpStats& rm_stats = rm_.stats();
    metrics_.degradation = rm_.degradation_counts();
    metrics_.total_sched_seconds = rm_stats.total_sched_seconds;
    metrics_.rm_invocations = rm_stats.invocations;
    metrics_.max_live_tasks = rm_stats.max_live_tasks;
    metrics_.downtime = injector_.downtime();
    metrics_.failure.resource_failures = injector_.failures();
    metrics_.failure.resource_repairs = injector_.repairs();
    metrics_.failure.rack_bursts = injector_.rack_bursts();

    if (!crashed && options_.validate_execution) {
      const std::string err =
          validate_execution(w_, executed_, metrics_.killed, metrics_.downtime);
      MRCP_CHECK_MSG(err.empty(), err.c_str());
    }
    metrics_.executed = std::move(executed_);
    return std::move(metrics_);
  }

  const Workload& w_;
  const SimOptions& options_;
  des::Simulation des_;
  MrcpRm rm_;
  FaultInjector injector_;
  Journal journal_;
  io::FileRecordWriter snapshot_writer_;
  std::uint64_t next_snapshot_at_ = 0;

  SimMetrics metrics_;
  std::vector<ExecutedTask> executed_;
  std::size_t jobs_left_ = 0;
  std::vector<std::vector<TaskState>> tasks_;
  std::vector<std::size_t> remaining_;
  std::vector<const Job*> jobs_by_id_;
  std::vector<des::EventHandle> arrival_events_;
  des::EventHandle deferral_wakeup_;
  Time deferral_wakeup_at_ = kNoTime;
};

}  // namespace

SimMetrics simulate_mrcp(const Workload& workload, const MrcpConfig& config,
                         const SimOptions& options) {
  MRCP_CHECK_MSG(validate_workload(workload).empty(), "invalid workload");
  const FaultConfig& faults = options.faults;
  {
    const std::string fault_err = faults.validate();
    MRCP_CHECK_MSG(fault_err.empty(), fault_err.c_str());
  }

  // Stragglers are an up-front workload transform: both the RM and the
  // post-hoc validator see the true (slowed) durations.
  Workload straggled;
  const Workload* active_workload = &workload;
  std::size_t straggler_tasks = 0;
  if (faults.stragglers_enabled()) {
    straggled = workload;
    straggler_tasks = apply_stragglers(straggled, faults);
    active_workload = &straggled;
  }

  MrcpSimDriver driver(*active_workload, config, options);
  driver.set_straggler_tasks(straggler_tasks);
  return driver.run();
}

}  // namespace mrcp::sim
