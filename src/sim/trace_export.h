// Schedule/trace export: plans and executed-task logs as CSV, one row
// per task interval, suitable for Gantt-chart tooling or spreadsheet
// inspection.
//
//   job,task,type,resource,start_s,end_s,started
#pragma once

#include <string>
#include <vector>

#include "core/plan.h"
#include "mapreduce/workload.h"
#include "sim/metrics.h"

namespace mrcp::sim {

/// CSV of a plan (includes the `started` column).
std::string plan_to_csv(const Plan& plan);

/// CSV of executed intervals; `workload` supplies the task types.
std::string execution_to_csv(const std::vector<ExecutedTask>& executed,
                             const Workload& workload);

/// CSV of injected resource outages: `resource,down_s,up_s`. An interval
/// still open at simulation end leaves `up_s` empty.
std::string downtime_to_csv(const std::vector<DownInterval>& downtime);

/// Write either CSV to a file; false on I/O error.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace mrcp::sim
