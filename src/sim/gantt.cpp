#include "sim/gantt.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/check.h"

namespace mrcp::sim {

std::string render_gantt(const Plan& plan, const Cluster& cluster,
                         const GanttOptions& options) {
  MRCP_CHECK(options.width >= 2);
  if (plan.tasks.empty()) return "";

  Time t_min = plan.tasks.front().start;
  Time t_max = plan.tasks.front().end;
  for (const PlannedTask& pt : plan.tasks) {
    t_min = std::min(t_min, pt.start);
    t_max = std::max(t_max, pt.end);
  }
  if (t_max <= t_min) t_max = t_min + Time{1};
  const double scale =
      static_cast<double>(options.width) / static_cast<double>((t_max - t_min).count());

  // Row per (resource, phase) that actually appears.
  const int rows = cluster.size() * 2;
  std::vector<std::string> cells(
      static_cast<std::size_t>(rows),
      std::string(static_cast<std::size_t>(options.width), ' '));
  std::vector<bool> used(static_cast<std::size_t>(rows), false);

  for (const PlannedTask& pt : plan.tasks) {
    const bool is_map = pt.type == TaskType::kMap;
    if (is_map && !options.include_map) continue;
    if (!is_map && !options.include_reduce) continue;
    const auto row = static_cast<std::size_t>(pt.resource * 2 + (is_map ? 0 : 1));
    used[row] = true;
    auto bucket = [&](Time t) {
      const int b = static_cast<int>(static_cast<double>((t - t_min).count()) * scale);
      return std::clamp(b, 0, options.width - 1);
    };
    const int b0 = bucket(pt.start);
    const int b1 = std::max(bucket(pt.end - Time{1}), b0);
    const char digit = static_cast<char>('0' + (pt.job % 10));
    for (int b = b0; b <= b1; ++b) {
      char& c = cells[row][static_cast<std::size_t>(b)];
      c = c == ' ' ? digit : '#';
    }
  }

  if (options.downtime != nullptr) {
    auto bucket = [&](Time t) {
      const int b = static_cast<int>(static_cast<double>((t - t_min).count()) * scale);
      return std::clamp(b, 0, options.width - 1);
    };
    for (const DownInterval& d : *options.downtime) {
      if (d.resource < 0 || d.resource >= cluster.size()) continue;
      const Time down_end = d.end == kNoTime ? t_max : d.end;
      if (down_end <= t_min || d.start >= t_max) continue;
      const int b0 = bucket(std::max(d.start, t_min));
      const int b1 = std::max(bucket(std::min(down_end, t_max) - Time{1}), b0);
      for (int phase = 0; phase < 2; ++phase) {
        if ((phase == 0 && !options.include_map) ||
            (phase == 1 && !options.include_reduce)) {
          continue;
        }
        const auto row = static_cast<std::size_t>(d.resource * 2 + phase);
        used[row] = true;
        for (int b = b0; b <= b1; ++b) {
          char& c = cells[row][static_cast<std::size_t>(b)];
          if (c == ' ') c = 'X';
        }
      }
    }
  }

  std::ostringstream os;
  os << "t = [" << ticks_to_seconds(t_min) << " s, " << ticks_to_seconds(t_max)
     << " s], " << options.width << " buckets\n";
  for (int r = 0; r < cluster.size(); ++r) {
    for (int phase = 0; phase < 2; ++phase) {
      const auto row = static_cast<std::size_t>(r * 2 + phase);
      if (!used[row]) continue;
      std::ostringstream label;
      label << 'r' << r << '/' << (phase == 0 ? "map" : "reduce");
      os << label.str() << std::string(12 - std::min<std::size_t>(
                                                11, label.str().size()),
                                       ' ')
         << '|' << cells[row] << "|\n";
    }
  }
  return os.str();
}

}  // namespace mrcp::sim
