// ASCII Gantt rendering of plans — a quick visual check of what the
// resource manager decided, one row per (resource, phase):
//
//   r0/map    |00 11  222|
//   r0/reduce |      3333|
//
// Each column is one time bucket; the digit is the owning job id (mod
// 10, '#' where more than one task of the same row shares the bucket —
// which is legitimate when the row's capacity exceeds 1). Injected
// resource outages render as 'X' in otherwise-empty buckets of the
// affected resource's rows.
#pragma once

#include <string>
#include <vector>

#include "core/plan.h"
#include "mapreduce/cluster.h"
#include "sim/metrics.h"

namespace mrcp::sim {

struct GanttOptions {
  int width = 80;          ///< time buckets across the chart
  bool include_reduce = true;
  bool include_map = true;
  /// Outage intervals to overlay (e.g. `SimMetrics::downtime`). Buckets
  /// inside an outage that no task occupies render as 'X'.
  const std::vector<DownInterval>* downtime = nullptr;
};

/// Render the plan. Empty plans render as an empty string.
std::string render_gantt(const Plan& plan, const Cluster& cluster,
                         const GanttOptions& options = {});

}  // namespace mrcp::sim
