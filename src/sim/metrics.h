// Simulation output: per-job records and the paper's performance metrics
// (§VI):
//   O — average matchmaking and scheduling time of a job (s),
//   N — number of jobs that missed their deadline,
//   T — average job turnaround time, sum(CT_j - s_j)/jobs (s),
//   P — percentage of late jobs, N / jobs arrived (%).
//
// Aggregation over a warmup-trimmed range of jobs approximates the
// paper's steady-state measurement (§VI.A "run long enough to ensure the
// system operates at steady state").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/batch_means.h"
#include "common/types.h"
#include "core/degradation.h"

namespace mrcp::sim {

struct JobRecord {
  JobId id = kNoJob;
  Time arrival;
  Time earliest_start;
  Time deadline;
  Time completion = kNoTime;  ///< kNoTime until the job finishes
  bool late = false;
  /// At least one of the job's tasks was killed by a resource failure.
  bool failure_affected = false;

  bool completed() const { return completion != kNoTime; }
  Time turnaround() const { return completion - earliest_start; }
};

/// Mark `record` complete at `now`. Aborts on double completion — the
/// drivers' "every task finished exactly once" invariant.
void finish_job_record(JobRecord& record, Time now);

/// One executed task interval, for post-hoc execution validation.
struct ExecutedTask {
  JobId job = kNoJob;
  int task_index = -1;
  ResourceId resource = kNoResource;
  Time start;
  Time end;
};

/// One resource outage. end == kNoTime means the resource was still down
/// when the simulation drained.
struct DownInterval {
  ResourceId resource = kNoResource;
  Time start;
  Time end = kNoTime;
};

/// Failure-attribution counters (all zero when fault injection is off).
struct FailureMetrics {
  std::uint64_t resource_failures = 0;
  std::uint64_t resource_repairs = 0;
  /// Correlated rack bursts fired (each may down several members; the
  /// member downs are counted in resource_failures).
  std::uint64_t rack_bursts = 0;
  std::uint64_t tasks_killed = 0;     ///< attempts lost to failures
  std::uint64_t straggler_tasks = 0;  ///< tasks slowed by the straggler model
  Time wasted_ticks;              ///< work executed by killed attempts
  /// Late jobs that had at least one task killed — an upper bound on
  /// "late because of failures" (the job may have been late regardless).
  std::uint64_t jobs_late_failure_affected = 0;

  double wasted_seconds() const { return ticks_to_seconds(wasted_ticks); }
};

struct SimMetrics {
  std::vector<JobRecord> records;  ///< indexed by job id
  /// Ground-truth executed intervals (validation input, trace export).
  std::vector<ExecutedTask> executed;
  /// Attempts killed by resource failures; `end` is the kill time, so
  /// end - start is the work wasted by that attempt.
  std::vector<ExecutedTask> killed;
  /// Injected resource outages, in failure order.
  std::vector<DownInterval> downtime;
  FailureMetrics failure;
  /// Degraded-mode attribution (MRCP-RM only; zero for baselines).
  DegradationCounts degradation;
  double total_sched_seconds = 0.0;
  std::uint64_t rm_invocations = 0;
  std::uint64_t max_live_tasks = 0;
  /// True when a crash-injection hook (DurabilityOptions::
  /// crash_after_records) stopped the run before the workload drained.
  /// Such metrics are partial; the recovery harness restores and resumes
  /// instead of reading them.
  bool crash_stopped = false;

  /// O in seconds: total scheduling time divided by submitted jobs.
  double sched_overhead_per_job() const {
    if (records.empty()) return 0.0;
    return total_sched_seconds / static_cast<double>(records.size());
  }

  struct Aggregate {
    std::size_t jobs = 0;
    std::int64_t late = 0;          ///< N
    double percent_late = 0.0;      ///< P (%)
    double mean_turnaround_s = 0.0; ///< T (s)
  };

  /// Aggregate over the jobs remaining after discarding the first
  /// warmup_fraction of records *in arrival order* (steady state). For
  /// workloads with arrival-sorted ids — the trace-format invariant —
  /// this equals the id-order cut.
  Aggregate aggregate(double warmup_fraction = 0.0) const;

  /// Within-run batch-means CI for the turnaround time T (seconds),
  /// warmup-trimmed. Complements the across-replication CI of
  /// sim::replicate: per-job turnarounds are autocorrelated (jobs share
  /// congestion periods), so this is the statistically sound single-run
  /// interval (see common/batch_means.h).
  BatchMeansResult turnaround_batch_ci(double warmup_fraction = 0.1,
                                       std::size_t num_batches = 20) const;
};

}  // namespace mrcp::sim
