// Simulation output: per-job records and the paper's performance metrics
// (§VI):
//   O — average matchmaking and scheduling time of a job (s),
//   N — number of jobs that missed their deadline,
//   T — average job turnaround time, sum(CT_j - s_j)/jobs (s),
//   P — percentage of late jobs, N / jobs arrived (%).
//
// Aggregation over a warmup-trimmed range of jobs approximates the
// paper's steady-state measurement (§VI.A "run long enough to ensure the
// system operates at steady state").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/batch_means.h"
#include "common/types.h"

namespace mrcp::sim {

struct JobRecord {
  JobId id = kNoJob;
  Time arrival = 0;
  Time earliest_start = 0;
  Time deadline = 0;
  Time completion = kNoTime;  ///< kNoTime until the job finishes
  bool late = false;

  bool completed() const { return completion != kNoTime; }
  Time turnaround() const { return completion - earliest_start; }
};

/// One executed task interval, for post-hoc execution validation.
struct ExecutedTask {
  JobId job = kNoJob;
  int task_index = -1;
  ResourceId resource = kNoResource;
  Time start = 0;
  Time end = 0;
};

struct SimMetrics {
  std::vector<JobRecord> records;  ///< indexed by job id
  /// Ground-truth executed intervals (validation input, trace export).
  std::vector<ExecutedTask> executed;
  double total_sched_seconds = 0.0;
  std::uint64_t rm_invocations = 0;
  std::uint64_t max_live_tasks = 0;

  /// O in seconds: total scheduling time divided by submitted jobs.
  double sched_overhead_per_job() const {
    if (records.empty()) return 0.0;
    return total_sched_seconds / static_cast<double>(records.size());
  }

  struct Aggregate {
    std::size_t jobs = 0;
    std::int64_t late = 0;          ///< N
    double percent_late = 0.0;      ///< P (%)
    double mean_turnaround_s = 0.0; ///< T (s)
  };

  /// Aggregate over jobs with id >= warmup_fraction * n (steady state).
  Aggregate aggregate(double warmup_fraction = 0.0) const;

  /// Within-run batch-means CI for the turnaround time T (seconds),
  /// warmup-trimmed. Complements the across-replication CI of
  /// sim::replicate: per-job turnarounds are autocorrelated (jobs share
  /// congestion periods), so this is the statistically sound single-run
  /// interval (see common/batch_means.h).
  BatchMeansResult turnaround_batch_ci(double warmup_fraction = 0.1,
                                       std::size_t num_batches = 20) const;
};

}  // namespace mrcp::sim
