// Helpers shared by the simulation drivers (cluster_sim.cpp and
// mrcp_driver.cpp). Internal — not part of the sim API.
#pragma once

#include <vector>

#include "mapreduce/workload.h"
#include "sim/metrics.h"

namespace mrcp::sim::internal {

/// Build the per-job record table (indexed by job id) for a workload.
/// Aborts on non-dense ids — the trace-format invariant.
std::vector<JobRecord> make_records(const Workload& workload);

}  // namespace mrcp::sim::internal
