#include "sim/experiment.h"

#include <algorithm>
#include <thread>

#include "common/check.h"
#include "common/table.h"

namespace mrcp::sim {

RunMetrics summarize_run(const SimMetrics& metrics, double warmup_fraction) {
  const SimMetrics::Aggregate agg = metrics.aggregate(warmup_fraction);
  RunMetrics run;
  run.O_seconds = metrics.sched_overhead_per_job();
  run.T_seconds = agg.mean_turnaround_s;
  run.N_late = static_cast<double>(agg.late);
  run.P_percent = agg.percent_late;
  return run;
}

ReplicatedMetrics replicate(
    std::size_t replications,
    const std::function<RunMetrics(std::size_t replication)>& run,
    unsigned num_threads) {
  MRCP_CHECK(replications >= 1);
  MRCP_CHECK(num_threads >= 1);
  std::vector<RunMetrics> results(replications);
  if (num_threads == 1) {
    for (std::size_t rep = 0; rep < replications; ++rep) results[rep] = run(rep);
  } else {
    // Static work-stealing-free partition: replication r goes to thread
    // r % num_threads. Each replication is fully independent, so the
    // only shared state is the results slot it owns.
    std::vector<std::thread> workers;
    const unsigned used = static_cast<unsigned>(
        std::min<std::size_t>(num_threads, replications));
    workers.reserve(used);
    for (unsigned w = 0; w < used; ++w) {
      workers.emplace_back([&, w] {
        for (std::size_t rep = w; rep < replications; rep += used) {
          results[rep] = run(rep);
        }
      });
    }
    for (std::thread& t : workers) t.join();
  }
  RunningStat o_stat;
  RunningStat t_stat;
  RunningStat n_stat;
  RunningStat p_stat;
  for (const RunMetrics& m : results) {
    o_stat.add(m.O_seconds);
    t_stat.add(m.T_seconds);
    n_stat.add(m.N_late);
    p_stat.add(m.P_percent);
  }
  ReplicatedMetrics out;
  out.O = confidence_interval(o_stat);
  out.T = confidence_interval(t_stat);
  out.N = confidence_interval(n_stat);
  out.P = confidence_interval(p_stat);
  out.replications = replications;
  return out;
}

std::vector<std::string> result_headers(const std::string& param_name) {
  return {param_name, "O(s)", "O±", "T(s)", "T±", "N", "P(%)", "P±"};
}

std::vector<std::string> result_row(const std::string& param_value,
                                    const ReplicatedMetrics& m) {
  return {param_value,
          Table::cell(m.O.mean, 6),
          Table::cell(m.O.half_width, 6),
          Table::cell(m.T.mean, 1),
          Table::cell(m.T.half_width, 1),
          Table::cell(m.N.mean, 1),
          Table::cell(m.P.mean, 2),
          Table::cell(m.P.half_width, 2)};
}

}  // namespace mrcp::sim
