#include "sim/metrics.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace mrcp::sim {

void finish_job_record(JobRecord& record, Time now) {
  MRCP_CHECK_MSG(!record.completed(), "job completed twice");
  record.completion = now;
  record.late = now > record.deadline;
}

namespace {

/// Record indices in arrival order (stable: ties keep id order). The
/// warmup cut must discard the *earliest-arriving* jobs, not the
/// lowest-numbered ones — identical only when ids are arrival-sorted.
std::vector<std::size_t> arrival_order(const std::vector<JobRecord>& records) {
  std::vector<std::size_t> order(records.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&records](std::size_t a, std::size_t b) {
                     return records[a].arrival < records[b].arrival;
                   });
  return order;
}

}  // namespace

SimMetrics::Aggregate SimMetrics::aggregate(double warmup_fraction) const {
  MRCP_CHECK(warmup_fraction >= 0.0 && warmup_fraction < 1.0);
  Aggregate agg;
  const std::vector<std::size_t> order = arrival_order(records);
  const auto first = static_cast<std::size_t>(
      warmup_fraction * static_cast<double>(order.size()));
  double turnaround_sum = 0.0;
  std::size_t completed = 0;
  for (std::size_t i = first; i < order.size(); ++i) {
    const JobRecord& r = records[order[i]];
    ++agg.jobs;
    MRCP_CHECK_MSG(r.completed(), "aggregate over incomplete simulation");
    ++completed;
    turnaround_sum += ticks_to_seconds(r.turnaround());
    if (r.late) ++agg.late;
  }
  if (agg.jobs > 0) {
    agg.percent_late =
        100.0 * static_cast<double>(agg.late) / static_cast<double>(agg.jobs);
  }
  if (completed > 0) {
    agg.mean_turnaround_s = turnaround_sum / static_cast<double>(completed);
  }
  return agg;
}

BatchMeansResult SimMetrics::turnaround_batch_ci(double warmup_fraction,
                                                 std::size_t num_batches) const {
  MRCP_CHECK(warmup_fraction >= 0.0 && warmup_fraction < 1.0);
  const std::vector<std::size_t> order = arrival_order(records);
  const auto first = static_cast<std::size_t>(
      warmup_fraction * static_cast<double>(order.size()));
  std::vector<double> series;
  series.reserve(order.size() - first);
  for (std::size_t i = first; i < order.size(); ++i) {
    const JobRecord& r = records[order[i]];
    MRCP_CHECK_MSG(r.completed(), "batch CI over incomplete simulation");
    series.push_back(ticks_to_seconds(r.turnaround()));
  }
  return batch_means_ci(series, num_batches);
}

}  // namespace mrcp::sim
