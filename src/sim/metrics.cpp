#include "sim/metrics.h"

#include "common/check.h"

namespace mrcp::sim {

SimMetrics::Aggregate SimMetrics::aggregate(double warmup_fraction) const {
  MRCP_CHECK(warmup_fraction >= 0.0 && warmup_fraction < 1.0);
  Aggregate agg;
  const auto first = static_cast<std::size_t>(
      warmup_fraction * static_cast<double>(records.size()));
  double turnaround_sum = 0.0;
  std::size_t completed = 0;
  for (std::size_t i = first; i < records.size(); ++i) {
    const JobRecord& r = records[i];
    ++agg.jobs;
    MRCP_CHECK_MSG(r.completed(), "aggregate over incomplete simulation");
    ++completed;
    turnaround_sum += ticks_to_seconds(r.turnaround());
    if (r.late) ++agg.late;
  }
  if (agg.jobs > 0) {
    agg.percent_late =
        100.0 * static_cast<double>(agg.late) / static_cast<double>(agg.jobs);
  }
  if (completed > 0) {
    agg.mean_turnaround_s = turnaround_sum / static_cast<double>(completed);
  }
  return agg;
}

BatchMeansResult SimMetrics::turnaround_batch_ci(double warmup_fraction,
                                                 std::size_t num_batches) const {
  MRCP_CHECK(warmup_fraction >= 0.0 && warmup_fraction < 1.0);
  const auto first = static_cast<std::size_t>(
      warmup_fraction * static_cast<double>(records.size()));
  std::vector<double> series;
  series.reserve(records.size() - first);
  for (std::size_t i = first; i < records.size(); ++i) {
    MRCP_CHECK_MSG(records[i].completed(),
                   "batch CI over incomplete simulation");
    series.push_back(ticks_to_seconds(records[i].turnaround()));
  }
  return batch_means_ci(series, num_batches);
}

}  // namespace mrcp::sim
