// Monetary cost accounting (paper §VII future work): run the same
// workload through MRCP-RM and MinEDF-WC and compare pay-as-you-go cost
// under a simple slot-second + lease pricing model, alongside the SLA
// metrics. Also demonstrates the ASCII Gantt renderer.
//
//   ./build/examples/cost_report --jobs 40
#include <cstdio>

#include "common/flags.h"
#include "core/cost_model.h"
#include "core/mrcp_rm.h"
#include "mapreduce/synthetic_workload.h"
#include "sim/cluster_sim.h"
#include "sim/experiment.h"
#include "sim/gantt.h"

using namespace mrcp;

namespace {
CostBreakdown cost_of(const std::vector<sim::ExecutedTask>& executed,
                      const Workload& w, const CostRates& rates) {
  std::vector<BusyInterval> intervals;
  intervals.reserve(executed.size());
  for (const sim::ExecutedTask& et : executed) {
    const Task& task =
        w.jobs[static_cast<std::size_t>(et.job)].task(
            static_cast<std::size_t>(et.task_index));
    intervals.push_back(BusyInterval{et.resource, task.type, et.start, et.end});
  }
  return intervals_cost(intervals, rates);
}
}  // namespace

int main(int argc, char** argv) {
  Flags flags("Cost accounting: MRCP-RM vs MinEDF-WC under slot pricing");
  flags.add_int("jobs", 40, "number of jobs")
      .add_int("seed", 1, "workload seed")
      .add_double("map-rate", 0.0001, "price per busy map slot-second")
      .add_double("reduce-rate", 0.0002, "price per busy reduce slot-second")
      .add_double("lease-rate", 0.00005, "price per resource lease-second");
  if (!flags.parse(argc, argv)) return flags.ok() ? 0 : 1;

  SyntheticWorkloadConfig wc;
  wc.num_jobs = static_cast<std::size_t>(flags.get_int("jobs"));
  wc.num_resources = 10;
  wc.num_map_tasks = {1, 20};
  wc.num_reduce_tasks = {1, 10};
  wc.arrival_rate = 0.02;
  wc.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const Workload w = generate_synthetic_workload(wc);

  const CostRates rates{flags.get_double("map-rate"),
                        flags.get_double("reduce-rate"),
                        flags.get_double("lease-rate")};

  MrcpConfig rm_cfg;
  const sim::SimMetrics cp_m = sim::simulate_mrcp(w, rm_cfg);
  const sim::SimMetrics edf_m = sim::simulate_minedf(w);
  const CostBreakdown cp_cost = cost_of(cp_m.executed, w, rates);
  const CostBreakdown edf_cost = cost_of(edf_m.executed, w, rates);

  std::printf("%-22s %12s %12s\n", "", "MRCP-RM", "MinEDF-WC");
  std::printf("%-22s %12.2f %12.2f\n", "busy map cost", cp_cost.map_busy_cost,
              edf_cost.map_busy_cost);
  std::printf("%-22s %12.2f %12.2f\n", "busy reduce cost",
              cp_cost.reduce_busy_cost, edf_cost.reduce_busy_cost);
  std::printf("%-22s %12.2f %12.2f\n", "lease (uptime) cost",
              cp_cost.uptime_cost, edf_cost.uptime_cost);
  std::printf("%-22s %12.2f %12.2f\n", "TOTAL", cp_cost.total(),
              edf_cost.total());
  std::printf("%-22s %12zu %12zu\n", "late jobs",
              static_cast<std::size_t>(cp_m.aggregate().late),
              static_cast<std::size_t>(edf_m.aggregate().late));

  // A small Gantt of the first plan for visual flavour.
  MrcpRm rm(w.cluster, rm_cfg);
  for (std::size_t i = 0; i < std::min<std::size_t>(3, w.size()); ++i) {
    Job j = w.jobs[i];
    j.arrival_time = Time{0};
    j.earliest_start = Time{0};
    rm.submit(j, Time{0});
  }
  sim::GanttOptions gopts;
  gopts.width = 64;
  std::printf("\nfirst-plan Gantt (3 jobs):\n%s",
              sim::render_gantt(rm.reschedule(Time{0}), w.cluster, gopts).c_str());
  return 0;
}
