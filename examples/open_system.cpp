// Open-system simulation: a Poisson stream of synthetic MapReduce jobs
// (paper Table 3) scheduled by MRCP-RM, reporting the paper's metrics
// O, N, T, P (one point of the Fig. 8 sweep).
//
//   ./build/examples/open_system --jobs 100 --lambda 0.01 --resources 50
#include <cstdio>

#include "common/flags.h"
#include "mapreduce/synthetic_workload.h"
#include "sim/cluster_sim.h"
#include "sim/experiment.h"

using namespace mrcp;

int main(int argc, char** argv) {
  Flags flags("Open-system MRCP-RM simulation (synthetic Table 3 workload)");
  flags.add_int("jobs", 100, "number of jobs in the arrival stream")
      .add_double("lambda", 0.01, "arrival rate (jobs/s)")
      .add_int("emax", 50, "map task execution time upper bound (s)")
      .add_int("resources", 50, "number of resources m")
      .add_int("map-slots", 2, "map slots per resource")
      .add_int("reduce-slots", 2, "reduce slots per resource")
      .add_double("p", 0.5, "probability a job is an advance reservation")
      .add_int("smax", 50000, "max earliest-start offset (s)")
      .add_double("dm", 5.0, "deadline multiplier upper bound d_M")
      .add_int("seed", 1, "workload seed")
      .add_double("solver-budget-s", 0.1, "CP solve budget per invocation (s)")
      .add_double("warmup", 0.1, "warmup fraction excluded from metrics");
  if (!flags.parse(argc, argv)) return flags.ok() ? 0 : 1;

  SyntheticWorkloadConfig wc;
  wc.num_jobs = static_cast<std::size_t>(flags.get_int("jobs"));
  wc.arrival_rate = flags.get_double("lambda");
  wc.e_max = flags.get_int("emax");
  wc.num_resources = static_cast<int>(flags.get_int("resources"));
  wc.map_capacity = static_cast<int>(flags.get_int("map-slots"));
  wc.reduce_capacity = static_cast<int>(flags.get_int("reduce-slots"));
  wc.start_prob = flags.get_double("p");
  wc.s_max = flags.get_int("smax");
  wc.deadline_multiplier_ul = flags.get_double("dm");
  wc.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  const Workload workload = generate_synthetic_workload(wc);
  const auto summary = workload.summarize();
  std::printf("workload: %zu jobs, %.1f maps + %.1f reduces per job, "
              "offered utilization %.2f\n",
              workload.size(), summary.mean_map_tasks,
              summary.mean_reduce_tasks, summary.offered_utilization);

  MrcpConfig rm;
  rm.solve.time_limit_s = flags.get_double("solver-budget-s");
  const sim::SimMetrics metrics = sim::simulate_mrcp(workload, rm);
  const sim::RunMetrics run =
      sim::summarize_run(metrics, flags.get_double("warmup"));

  std::printf("\nresults (warmup-trimmed):\n");
  std::printf("  O  = %.6f s/job (scheduling overhead)\n", run.O_seconds);
  std::printf("  T  = %.1f s (average turnaround)\n", run.T_seconds);
  std::printf("  N  = %.0f late jobs\n", run.N_late);
  std::printf("  P  = %.2f %%\n", run.P_percent);
  std::printf("  RM invocations: %llu, largest CP model: %llu tasks\n",
              static_cast<unsigned long long>(metrics.rm_invocations),
              static_cast<unsigned long long>(metrics.max_live_tasks));

  // Single-run statistical quality of T: batch-means CI (per-job
  // turnarounds are autocorrelated, so this — not a naive per-sample
  // CI — is the honest within-run interval).
  const BatchMeansResult bm =
      metrics.turnaround_batch_ci(flags.get_double("warmup"));
  std::printf("  T batch-means 95%% CI: %.1f ± %.1f s (%zu batches of %zu, "
              "batch lag-1 autocorr %.2f)\n",
              bm.mean, bm.half_width, bm.batches, bm.batch_size,
              bm.batch_lag1_autocorr);
  return 0;
}
