// Quickstart: schedule a small batch of MapReduce jobs with SLAs through
// MRCP-RM and print the resulting matchmaking + schedule.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "common/table.h"
#include "core/mrcp_rm.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job.h"

using namespace mrcp;

namespace {

// A job with an SLA: earliest start s_j, per-task execution times, and an
// end-to-end deadline d_j. Times are in ticks (1 tick = 1 ms).
Job make_job(JobId id, Time earliest_start, Time deadline,
             std::initializer_list<Time> map_secs,
             std::initializer_list<Time> reduce_secs) {
  Job j;
  j.id = id;
  j.arrival_time = Time{0};
  j.earliest_start = earliest_start;
  j.deadline = deadline;
  for (Time s : map_secs) {
    j.map_tasks.push_back(Task{TaskType::kMap, s * kTicksPerSecond, 1});
  }
  for (Time s : reduce_secs) {
    j.reduce_tasks.push_back(Task{TaskType::kReduce, s * kTicksPerSecond, 1});
  }
  return j;
}

}  // namespace

int main() {
  // A small cloud: 4 resources, each with 2 map slots and 1 reduce slot.
  Cluster cluster = Cluster::homogeneous(4, 2, 1);

  MrcpConfig config;  // defaults: §V.D separation optimization on
  config.solve.time_limit_s = 1.0;
  // Disable the §V.E deferral queue so the advance reservation (job 20)
  // shows up in the very first plan; see examples/advance_reservation.cpp
  // for the deferral behaviour.
  config.defer_future_jobs = false;
  MrcpRm rm(cluster, config);

  // Three jobs with SLAs. Job 20 is an advance reservation (s_j = 60 s).
  rm.submit(make_job(10, Time{0}, Time{200} * kTicksPerSecond, {Time{30}, Time{30}, Time{20}}, {Time{40}}), Time{0});
  rm.submit(make_job(11, Time{0}, Time{90} * kTicksPerSecond, {Time{25}, Time{25}}, {Time{15}}), Time{0});
  rm.submit(make_job(20, Time{60} * kTicksPerSecond, Time{400} * kTicksPerSecond,
                     {Time{50}, Time{50}, Time{50}, Time{50}}, {Time{60}, Time{60}}),
            Time{0});

  // Run the Table 2 matchmaking-and-scheduling algorithm at t = 0.
  const Plan& plan = rm.reschedule(Time{0});

  Table table({"job", "task", "type", "resource", "start(s)", "end(s)"});
  for (const PlannedTask& pt : plan.tasks) {
    table.add_row({
        std::to_string(pt.job),
        std::to_string(pt.task_index),
        task_type_name(pt.type),
        std::to_string(pt.resource),
        Table::cell(ticks_to_seconds(pt.start), 1),
        Table::cell(ticks_to_seconds(pt.end), 1),
    });
  }
  std::printf("MRCP-RM schedule (epoch %llu):\n%s\n",
              static_cast<unsigned long long>(plan.epoch),
              table.to_string().c_str());
  std::printf("scheduling overhead so far: %.3f ms/job\n",
              rm.stats().average_sched_seconds_per_job() * 1e3);
  return 0;
}
