// Multi-stage workflow scheduling — the paper's §VII generalization
// ("handling more complex workflows with user-specified precedence
// relationships"), implemented via Job::precedences.
//
// Models a three-stage ETL pipeline per request:
//   ingest (maps) -> transform (maps, each depending on one ingest task)
//   -> aggregate (reduces, after all maps by the MapReduce rule).
//
//   ./build/examples/workflow_pipeline
#include <cstdio>

#include "common/table.h"
#include "core/mrcp_rm.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job.h"

using namespace mrcp;

namespace {

/// An ETL pipeline job: `width` parallel lanes; lane i is
/// ingest_i -> transform_i; one aggregate reduce at the end.
Job make_pipeline(JobId id, Time start_s, Time deadline_s, int width,
                  Time ingest_s, Time transform_s, Time aggregate_s) {
  Job j;
  j.id = id;
  j.arrival_time = Time{0};
  j.earliest_start = Time{start_s} * kTicksPerSecond;
  j.deadline = Time{deadline_s} * kTicksPerSecond;
  for (int lane = 0; lane < width; ++lane) {
    j.map_tasks.push_back(Task{TaskType::kMap, ingest_s * kTicksPerSecond, 1});
  }
  for (int lane = 0; lane < width; ++lane) {
    j.map_tasks.push_back(
        Task{TaskType::kMap, transform_s * kTicksPerSecond, 1});
    // transform of lane `lane` waits for its ingest task.
    j.precedences.emplace_back(lane, width + lane);
  }
  j.reduce_tasks.push_back(
      Task{TaskType::kReduce, aggregate_s * kTicksPerSecond, 1});
  return j;
}

}  // namespace

int main() {
  MrcpConfig config;
  config.defer_future_jobs = false;
  config.validate_plans = true;  // belt-and-braces for the demo
  MrcpRm rm(Cluster::homogeneous(4, 2, 1), config);

  rm.submit(make_pipeline(0, Time{0}, Time{400}, /*width=*/3, Time{40}, Time{60}, Time{50}), Time{0});
  rm.submit(make_pipeline(1, Time{0}, Time{600}, /*width=*/2, Time{80}, Time{30}, Time{40}), Time{0});

  const Plan& plan = rm.reschedule(Time{0});

  Table table({"job", "task", "stage", "resource", "start(s)", "end(s)"});
  for (const PlannedTask& pt : plan.tasks) {
    const char* stage = pt.type == TaskType::kReduce ? "aggregate"
                        : pt.task_index < 3 && pt.job == 0 ? "ingest"
                        : pt.job == 0                      ? "transform"
                        : pt.task_index < 2                ? "ingest"
                                                           : "transform";
    table.add_row({std::to_string(pt.job), std::to_string(pt.task_index),
                   stage, std::to_string(pt.resource),
                   Table::cell(ticks_to_seconds(pt.start), 0),
                   Table::cell(ticks_to_seconds(pt.end), 0)});
  }
  std::printf("ETL pipeline schedule (ingest -> transform -> aggregate):\n%s\n",
              table.to_string().c_str());

  // Show that each transform starts exactly when its ingest lane ends.
  for (const PlannedTask& pt : plan.tasks) {
    if (pt.job != 0 || pt.type != TaskType::kMap || pt.task_index < 3) continue;
    const int lane = pt.task_index - 3;
    for (const PlannedTask& ingest : plan.tasks) {
      if (ingest.job == 0 && ingest.task_index == lane &&
          pt.start < ingest.end) {
        std::printf("ERROR: transform lane %d starts before its ingest!\n",
                    lane);
        return 1;
      }
    }
  }
  std::printf("all transform stages respect their ingest lanes — OK\n");
  return 0;
}
