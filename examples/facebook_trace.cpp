// Facebook-trace comparison: the paper's §VI.B.1 head-to-head between
// MRCP-RM and MinEDF-WC on the Table 4 workload (one point of Figs. 2/3).
//
//   ./build/examples/facebook_trace --jobs 150 --lambda 0.0003
#include <cstdio>

#include "common/flags.h"
#include "mapreduce/facebook_workload.h"
#include "sim/cluster_sim.h"
#include "sim/experiment.h"

using namespace mrcp;

int main(int argc, char** argv) {
  Flags flags("MRCP-RM vs MinEDF-WC on the Facebook-derived workload");
  flags.add_int("jobs", 150, "number of jobs")
      .add_double("lambda", 0.0003, "arrival rate (jobs/s)")
      .add_int("seed", 1, "workload seed")
      .add_double("solver-budget-s", 0.1, "CP solve budget per invocation (s)")
      .add_double("warmup", 0.1, "warmup fraction excluded from metrics");
  if (!flags.parse(argc, argv)) return flags.ok() ? 0 : 1;

  FacebookWorkloadConfig wc;
  wc.num_jobs = static_cast<std::size_t>(flags.get_int("jobs"));
  wc.arrival_rate = flags.get_double("lambda");
  wc.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const Workload workload = generate_facebook_workload(wc);

  std::printf("workload: %zu jobs on 64 resources (1 map + 1 reduce slot "
              "each), lambda = %g jobs/s\n",
              workload.size(), wc.arrival_rate);

  MrcpConfig rm;
  rm.solve.time_limit_s = flags.get_double("solver-budget-s");
  const double warmup = flags.get_double("warmup");

  const sim::SimMetrics cp_metrics = sim::simulate_mrcp(workload, rm);
  const sim::RunMetrics cp_run = sim::summarize_run(cp_metrics, warmup);

  const sim::SimMetrics edf_metrics = sim::simulate_minedf(workload);
  const sim::RunMetrics edf_run = sim::summarize_run(edf_metrics, warmup);

  std::printf("\n%-12s %12s %12s\n", "", "MRCP-RM", "MinEDF-WC");
  std::printf("%-12s %12.2f %12.2f\n", "P (%)", cp_run.P_percent,
              edf_run.P_percent);
  std::printf("%-12s %12.1f %12.1f\n", "T (s)", cp_run.T_seconds,
              edf_run.T_seconds);
  std::printf("%-12s %12.0f %12.0f\n", "N (late)", cp_run.N_late,
              edf_run.N_late);
  std::printf("%-12s %12.6f %12.6f\n", "O (s/job)", cp_run.O_seconds,
              edf_run.O_seconds);
  if (edf_run.P_percent > 0.0) {
    std::printf("\nP reduction vs MinEDF-WC: %.0f %%\n",
                100.0 * (1.0 - cp_run.P_percent / edf_run.P_percent));
  }
  return 0;
}
