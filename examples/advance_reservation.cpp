// Advance reservations: jobs whose SLA earliest start time s_j lies in
// the future. Demonstrates the §V.E deferral queue — far-future jobs
// wait outside the CP model until close to their start — and that
// execution never begins before s_j.
//
//   ./build/examples/advance_reservation
#include <cstdio>

#include "common/table.h"
#include "core/mrcp_rm.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job.h"

using namespace mrcp;

namespace {
Job make_ar_job(JobId id, Time arrival_s, Time start_s, Time deadline_s,
                int maps, Time map_dur_s) {
  Job j;
  j.id = id;
  j.arrival_time = arrival_s * kTicksPerSecond;
  j.earliest_start = start_s * kTicksPerSecond;
  j.deadline = deadline_s * kTicksPerSecond;
  for (int t = 0; t < maps; ++t) {
    j.map_tasks.push_back(Task{TaskType::kMap, map_dur_s * kTicksPerSecond, 1});
  }
  j.reduce_tasks.push_back(
      Task{TaskType::kReduce, map_dur_s * kTicksPerSecond, 1});
  return j;
}

void print_plan(const char* label, const Plan& plan) {
  Table table({"job", "task", "type", "resource", "start(s)", "end(s)"});
  for (const PlannedTask& pt : plan.tasks) {
    table.add_row({std::to_string(pt.job), std::to_string(pt.task_index),
                   task_type_name(pt.type), std::to_string(pt.resource),
                   Table::cell(ticks_to_seconds(pt.start), 0),
                   Table::cell(ticks_to_seconds(pt.end), 0)});
  }
  std::printf("%s\n%s\n", label, table.to_string().c_str());
}
}  // namespace

int main() {
  MrcpConfig config;
  config.defer_future_jobs = true;
  config.deferral_window = Time{120} * kTicksPerSecond;  // wake 2 min before s_j

  MrcpRm rm(Cluster::homogeneous(2, 2, 1), config);

  // An on-demand job (s_j = arrival) and two reservations for later.
  rm.submit(make_ar_job(0, Time{0}, Time{0}, Time{600}, 3, Time{60}), Time{0});
  rm.submit(make_ar_job(1, Time{0}, Time{300}, Time{1200}, 2, Time{90}), Time{0});    // reserved at t=300s
  rm.submit(make_ar_job(2, Time{0}, Time{4000}, Time{6000}, 4, Time{120}), Time{0});  // far future

  const Plan& p0 = rm.reschedule(Time{0});
  print_plan("t=0: jobs 1 and 2 deferred (releases at s_j - window):", p0);
  std::printf("next deferral release: %.0f s\n\n",
              ticks_to_seconds(rm.next_deferred_release()));

  // In the simulator these invocations are driven by deferral-release
  // wakeup events; here we call them explicitly.
  const Plan& p_mid = rm.reschedule(rm.next_deferred_release());
  print_plan("t=180 s: job 1 released, scheduled at its s_j = 300 s:", p_mid);

  const Plan& p1 = rm.reschedule(Time{3880} * kTicksPerSecond);
  print_plan("t=3880 s: job 2 released, scheduled at its s_j = 4000 s:", p1);

  // Every job-2 task must start at or after its reservation time.
  for (const PlannedTask& pt : p1.tasks) {
    if (pt.job == 2 && pt.start < Time{4000} * kTicksPerSecond) {
      std::printf("ERROR: task scheduled before its reservation!\n");
      return 1;
    }
  }
  std::printf("\nall reserved tasks start at/after their s_j — OK\n");
  return 0;
}
